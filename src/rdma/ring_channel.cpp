#include "rdma/ring_channel.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace skv::rdma {

RingChannel::RingChannel(RdmaNetwork& net, net::NodeRef self,
                         net::EndpointId peer, RingParams params)
    : net_(net), self_(self), peer_(peer), params_(params),
      rng_(net.simulation().fork_rng()) {
    SKV_CHECK(params_.ring_bytes > 0);
    SKV_CHECK(params_.credit_threshold > 0);
    // A credit threshold above half the ring can deadlock: the sender's
    // window empties before the receiver ever announces consumption.
    params_.credit_threshold =
        std::min(params_.credit_threshold, params_.ring_bytes / 2);
}

void RingChannel::init_local() {
    channel_ = std::make_shared<CompletionChannel>(net_.simulation());
    send_cq_ = std::make_shared<CompletionQueue>(channel_);
    recv_cq_ = std::make_shared<CompletionQueue>(channel_);
    recv_mr_ = net_.register_mr(self_, params_.ring_bytes);
    auto weak = weak_from_this();
    channel_->set_on_event([weak]() {
        if (auto self = weak.lock()) self->on_cq_event();
    });
    channel_->req_notify();
}

void RingChannel::attach(QueuePairPtr own_qp, std::uint32_t remote_rkey,
                         std::size_t remote_capacity) {
    SKV_CHECK(own_qp);
    qp_ = std::move(own_qp);
    remote_rkey_ = remote_rkey;
    remote_capacity_ = remote_capacity;
    free_space_ = remote_capacity;
    replenish_recvs();
    pump_backlog();
}

void RingChannel::replenish_recvs() {
    if (!qp_) return;
    if (posted_recvs_ > params_.recv_low_water) return;
    while (posted_recvs_ < params_.recv_batch) {
        // Receives for WRITE_WITH_IMM carry no buffer (the data already
        // landed in the ring); credit SENDs are small control frames.
        qp_->post_recv(next_wr_id_++, recv_mr_, 0, 0);
        ++posted_recvs_;
    }
}

std::string RingChannel::encode_credit(std::uint64_t bytes) {
    std::string s(8, '\0');
    for (int i = 0; i < 8; ++i) s[static_cast<std::size_t>(i)] = static_cast<char>(bytes >> (i * 8));
    return s;
}

std::uint64_t RingChannel::decode_credit(std::string_view payload) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8 && static_cast<std::size_t>(i) < payload.size(); ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                 payload[static_cast<std::size_t>(i)]))
             << (i * 8);
    }
    return v;
}

void RingChannel::send(std::string payload) {
    if (!open_) return;
    // Fragment large messages so a frame always fits the ring with room
    // for flow control to make progress.
    const std::size_t limit = max_fragment();
    std::size_t off = 0;
    do {
        const std::size_t n = std::min(limit, payload.size() - off);
        const bool final = off + n == payload.size();
        std::string frame;
        frame.reserve(n + 1);
        frame.push_back(final ? kFinal : kMore);
        frame.append(payload, off, n);
        off += n;
        if (qp_ && backlog_.empty() && frame.size() <= free_space_) {
            transmit(std::move(frame));
        } else {
            backlog_bytes_ += frame.size();
            backlog_.push_back(std::move(frame));
        }
    } while (off < payload.size());
}

void RingChannel::pump_backlog() {
    while (qp_ && !backlog_.empty() && backlog_.front().size() <= free_space_) {
        std::string payload = std::move(backlog_.front());
        backlog_.pop_front();
        backlog_bytes_ -= payload.size();
        transmit(std::move(payload));
    }
}

void RingChannel::transmit(std::string payload) {
    const std::size_t len = payload.size();
    SKV_DCHECK(len <= free_space_);
    free_space_ -= len;
    sent_total_ += len;
    SendWr wr;
    wr.wr_id = next_wr_id_++;
    wr.op = Opcode::kWriteWithImm;
    wr.payload = std::move(payload);
    wr.rkey = remote_rkey_;
    wr.remote_offset = write_cursor_;
    wr.wrapped = true;
    wr.has_imm = true;
    wr.imm = static_cast<std::uint32_t>(len);
    // Selective signaling: ring progress is tracked by credits, so data
    // frames need no send completion — the CPU never touches them again.
    wr.signaled = false;
    write_cursor_ = (write_cursor_ + len) % remote_capacity_;
    ++frames_sent_;
    qp_->post_send(std::move(wr));
}

void RingChannel::on_cq_event() {
    if (!open_) return;
    // A halted (crashed) host consumes no completions, but the channel
    // must stay armed so completions arriving after a restart still wake
    // the owner (fire() disarmed it before calling us).
    if (self_.core->halted()) {
        channel_->req_notify();
        return;
    }
    // The completion event wakes the owner; CQ processing runs as one task
    // on the owner's core (ibv_get_cq_event + ibv_poll_cq + ack + re-arm).
    if (cq_task_scheduled_) return;
    cq_task_scheduled_ = true;
    // Completion-channel wakeup span: event fire -> CQ drain task running
    // (the scheduling gap is the "wakeup" the paper's event-driven master
    // pays instead of burning a polling core).
    obs::Tracer* tracer = net_.tracer();
    const bool traced = tracer != nullptr && tracer->enabled();
    const sim::SimTime fired_at = net_.simulation().now();
    if (traced && obs_track_ == UINT32_MAX) {
        obs_track_ = tracer->track("cq/" + net_.fabric().name_of(self_.ep));
    }
    auto self = shared_from_this();
    self_.core->submit(
        net_.costs().jittered(rng_, net_.costs().completion_handle),
        [self, traced, fired_at]() {
            self->cq_task_scheduled_ = false;
            if (traced) {
                if (obs::Tracer* t = self->net_.tracer()) {
                    t->complete(self->obs_track_, obs::Stage::kCqWakeup,
                                fired_at, self->net_.simulation().now());
                }
            }
            if (!self->open_) return;
            self->batch_data_bytes_ = 0;
            for (const auto& c : self->recv_cq_->poll()) self->handle_completion(c);
            if (!self->open_) return; // handler closed us mid-batch
            // If one batch drained (almost) the sender's whole window, the
            // ring had filled: per the paper's protocol the receive MR is
            // re-registered before its information is announced again.
            if (self->batch_data_bytes_ + self->params_.credit_threshold >=
                self->params_.ring_bytes) {
                self->recv_mr_->reregister();
                self->self_.core->consume(self->net_.costs().mr_register);
                ++self->reregs_;
            }
            // Data frames are unsignaled (selective signaling), so the send
            // CQ only ever holds failed-post completions for credit SENDs;
            // the credit protocol already recovers those via the next credit.
            self->send_cq_->poll(); // simlint2:allow(unchecked-status) drained for bookkeeping only
            self->channel_->req_notify();
            self->replenish_recvs();
        });
}

void RingChannel::handle_completion(const Completion& c) {
    // A handler invoked from handle_data may close this channel while the
    // polled batch is still being walked; later entries must be ignored.
    if (!open_) return;
    if (c.op != Opcode::kRecv) return;
    if (!c.success) return;
    SKV_DCHECK(posted_recvs_ > 0);
    --posted_recvs_;
    if (c.has_imm) {
        handle_data(c);
    } else {
        // Credit-return SEND carrying the peer's cumulative consumed total.
        // Duplicates and reordered stale credits carry a lower total and are
        // ignored; a lost credit is recovered by the next one.
        const std::uint64_t total = decode_credit(c.inline_payload);
        if (total > credited_total_ && total <= sent_total_) {
            credited_total_ = total;
            const std::uint64_t outstanding = sent_total_ - credited_total_;
            free_space_ = remote_capacity_ -
                          std::min<std::uint64_t>(outstanding, remote_capacity_);
            pump_backlog();
        }
    }
}

void RingChannel::handle_data(const Completion& c) {
    const std::uint32_t len = c.imm;
    const std::size_t cap = params_.ring_bytes;
    const std::size_t off = static_cast<std::size_t>(c.remote_offset) % cap;
    if (off != read_cursor_) {
        // The sender wrote this frame somewhere other than our cursor. If
        // the offset is (cyclically) behind us this is a duplicated frame we
        // already consumed; ignore it entirely. If it is ahead, every frame
        // in between was lost: account the hole as consumed (so the sender's
        // window recovers), resync the cursor, and poison reassembly until
        // the next message boundary.
        const std::size_t gap = (off + cap - read_cursor_) % cap;
        if (gap > cap / 2) {
            ++stale_frames_;
            return;
        }
        lost_gap_bytes_ += gap;
        total_consumed_ += gap;
        consumed_since_credit_ += gap;
        batch_data_bytes_ += gap;
        read_cursor_ = off;
        if (!reassembly_.empty()) ++reassembly_resets_;
        reassembly_.clear();
        discard_until_final_ = true;
    }
    std::string frame = recv_mr_->read_wrapped(read_cursor_, len);
    read_cursor_ = (read_cursor_ + len) % cap;
    total_consumed_ += len;
    consumed_since_credit_ += len;
    batch_data_bytes_ += len;
    ++frames_received_;
    maybe_return_credits();
    if (frame.empty()) return;
    const char flag = frame[0];
    if (discard_until_final_) {
        // This frame may be the tail of a message whose head fell into the
        // hole; drop up to and including the next boundary and let the
        // reliable layer above retransmit the affected messages.
        if (flag == kFinal) discard_until_final_ = false;
        return;
    }
    reassembly_.append(frame, 1, frame.size() - 1);
    if (flag != kFinal) return;
    std::string payload = std::move(reassembly_);
    reassembly_.clear();
    if (on_message_) {
        on_message_(std::move(payload));
    } else {
        pending_.push_back(std::move(payload));
    }
}

void RingChannel::maybe_return_credits() {
    if (!qp_) return; // torn down mid-batch
    if (consumed_since_credit_ < params_.credit_threshold) return;
    SendWr wr;
    wr.wr_id = next_wr_id_++;
    wr.op = Opcode::kSend;
    wr.payload = encode_credit(total_consumed_);
    consumed_since_credit_ = 0;
    ++credit_msgs_;
    qp_->post_send(std::move(wr));
}

void RingChannel::set_on_message(MessageHandler handler) {
    on_message_ = std::move(handler);
    while (on_message_ && !pending_.empty()) {
        auto payload = std::move(pending_.front());
        pending_.pop_front();
        on_message_(std::move(payload));
    }
}

void RingChannel::close() {
    if (!open_) return;
    open_ = false;
    net_.simulation().trace().note(sim::TraceEvent::kChannelClose,
                                   net_.simulation().now(), self_.ep, peer_);
    if (qp_) qp_->disconnect();
    backlog_.clear();
    backlog_bytes_ = 0;
    pending_.clear();
    reassembly_.clear();
    // Drop the rkey registry entry: WRITEs still on the wire toward this
    // ring are discarded by the transport (remote-access error in hardware).
    // recv_mr_ itself stays until the ring dies — in-flight CM handshake
    // callbacks may still query recv_mr()->rkey().
    if (recv_mr_) net_.deregister_mr(recv_mr_->rkey());
    if (on_message_ || qp_ || channel_) {
        net_.simulation().trace().note(sim::TraceEvent::kHandlerClear,
                                       net_.simulation().now(), self_.ep, peer_);
        // close() may be running inside on_message_ (a server handler
        // tearing down the connection it is serving) or inside the CQ task
        // that still touches qp_/channel_ after handle_completion returns.
        // Defer the release one sim event; open_ == false already cuts off
        // all delivery and posting.
        auto self = shared_from_this();
        net_.simulation().after(sim::Duration::zero(), [self]() {
            self->on_message_ = nullptr;
            self->qp_.reset();
            if (self->channel_) self->channel_->set_on_event(nullptr);
        });
    }
}

} // namespace skv::rdma
