#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/channel.hpp"
#include "rdma/verbs.hpp"

namespace skv::rdma {

/// Tuning knobs for one direction of a ring channel.
struct RingParams {
    /// Receive-ring capacity per side.
    std::size_t ring_bytes = 256 * 1024;
    /// Receiver returns credits once this many bytes have been consumed.
    std::size_t credit_threshold = 64 * 1024;
    /// Posted-receive high/low water marks.
    std::size_t recv_batch = 64;
    std::size_t recv_low_water = 16;
};

/// The SKV RDMA messenger (paper §III-B): each peer registers a circular
/// receive buffer; the sender pushes frames with WRITE_WITH_IMM (the
/// immediate carries the frame length, notifying the receiver its memory
/// was written); when the receive ring fills, the receiver re-registers
/// the MR and returns credits with a SEND, after which transmission
/// resumes — "after sending the MR information to the other node with the
/// SEND operation, the previous communication process continues".
///
/// Implements net::Channel so servers run identically over TCP and RDMA.
class RingChannel final : public net::Channel,
                          public std::enable_shared_from_this<RingChannel> {
public:
    RingChannel(RdmaNetwork& net, net::NodeRef self, net::EndpointId peer,
                RingParams params);

    /// Allocate local resources (CQs, recv MR). Called by the CM before the
    /// remote ring information is known.
    void init_local();
    /// Learn the peer ring (from the MR-exchange handshake) and wire QPs.
    void attach(QueuePairPtr own_qp, std::uint32_t remote_rkey,
                std::size_t remote_capacity);

    // --- net::Channel ----------------------------------------------------
    void send(std::string payload) override;
    void set_on_message(MessageHandler handler) override;
    void close() override;
    [[nodiscard]] bool open() const override { return open_; }
    [[nodiscard]] net::EndpointId peer() const override { return peer_; }
    [[nodiscard]] std::size_t backlog_bytes() const override { return backlog_bytes_; }

    /// Move this channel's processing (completion handling, WR posting) to
    /// another core on the same endpoint. Nic-KV uses this to spread slave
    /// channels across ARM cores in multi-threaded replication mode.
    void rebind_core(cpu::Core* core) { self_.core = core; }

    // --- introspection for tests and stats --------------------------------
    [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
    [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
    [[nodiscard]] std::uint64_t credit_messages() const { return credit_msgs_; }
    [[nodiscard]] std::uint64_t mr_reregistrations() const { return reregs_; }
    [[nodiscard]] std::uint64_t lost_gap_bytes() const { return lost_gap_bytes_; }
    [[nodiscard]] std::uint64_t stale_frames() const { return stale_frames_; }
    [[nodiscard]] std::uint64_t reassembly_resets() const { return reassembly_resets_; }
    [[nodiscard]] std::size_t send_window() const { return free_space_; }
    [[nodiscard]] const MemoryRegionPtr& recv_mr() const { return recv_mr_; }
    [[nodiscard]] const QueuePairPtr& qp() const { return qp_; }
    [[nodiscard]] const CompletionQueuePtr& send_cq() const { return send_cq_; }
    [[nodiscard]] const CompletionQueuePtr& recv_cq() const { return recv_cq_; }

private:
    /// Credit-return control frame: 8-byte little-endian byte count.
    static std::string encode_credit(std::uint64_t bytes);
    static std::uint64_t decode_credit(std::string_view payload);

    /// Payloads larger than a quarter of the ring are fragmented; each
    /// ring frame carries a 1-byte header: kFinal completes a message,
    /// kMore announces continuation (RDB snapshots during initial sync
    /// are far larger than the ring).
    static constexpr char kFinal = 'F';
    static constexpr char kMore = 'M';
    [[nodiscard]] std::size_t max_fragment() const {
        return params_.ring_bytes / 4;
    }

    void replenish_recvs();
    void pump_backlog();
    void transmit(std::string payload);
    void on_cq_event();
    void handle_completion(const Completion& c);
    void handle_data(const Completion& c);
    void maybe_return_credits();

    RdmaNetwork& net_;
    net::NodeRef self_;
    net::EndpointId peer_;
    RingParams params_;
    sim::Rng rng_;

    std::shared_ptr<CompletionChannel> channel_;
    CompletionQueuePtr send_cq_;
    CompletionQueuePtr recv_cq_;
    QueuePairPtr qp_;
    MemoryRegionPtr recv_mr_;

    // Sender state for the remote ring. Credits carry the receiver's
    // cumulative consumed-byte total, so a lost or duplicated credit frame
    // cannot permanently shrink (or inflate) the send window.
    std::uint32_t remote_rkey_ = 0;
    std::size_t remote_capacity_ = 0;
    std::size_t write_cursor_ = 0;
    std::size_t free_space_ = 0;
    std::uint64_t sent_total_ = 0;     // cumulative bytes pushed to peer ring
    std::uint64_t credited_total_ = 0; // highest cumulative credit received
    std::deque<std::string> backlog_;
    std::size_t backlog_bytes_ = 0;

    // Receiver state for the local ring.
    std::size_t read_cursor_ = 0;
    std::uint64_t total_consumed_ = 0; // cumulative, includes loss holes
    std::size_t consumed_since_credit_ = 0;
    std::size_t batch_data_bytes_ = 0; // data consumed by the current CQ batch
    std::size_t posted_recvs_ = 0;
    std::uint64_t next_wr_id_ = 1;

    MessageHandler on_message_;
    std::string reassembly_; // accumulates kMore fragments
    // Set when a loss hole is detected: frames up to the next kFinal may be
    // a tail whose head is gone, so they are consumed but not delivered.
    bool discard_until_final_ = false;
    std::deque<std::string> pending_;
    bool open_ = true;
    bool cq_task_scheduled_ = false;

    std::uint64_t frames_sent_ = 0;
    std::uint64_t frames_received_ = 0;
    std::uint64_t credit_msgs_ = 0;
    std::uint64_t reregs_ = 0;
    std::uint64_t lost_gap_bytes_ = 0;
    std::uint64_t stale_frames_ = 0;
    std::uint64_t reassembly_resets_ = 0;
    // Lazily registered tracer track for completion-wakeup spans.
    std::uint32_t obs_track_ = UINT32_MAX;
};

using RingChannelPtr = std::shared_ptr<RingChannel>;

} // namespace skv::rdma
