#include "rdma/verbs.hpp"
#include "sim/check.hpp"


namespace skv::rdma {

const char* to_string(Opcode op) {
    switch (op) {
        case Opcode::kSend: return "SEND";
        case Opcode::kWrite: return "WRITE";
        case Opcode::kWriteWithImm: return "WRITE_WITH_IMM";
        case Opcode::kRead: return "READ";
        case Opcode::kRecv: return "RECV";
    }
    return "?";
}

// --- MemoryRegion -----------------------------------------------------------

MemoryRegion::MemoryRegion(std::uint32_t rkey, std::size_t size)
    : rkey_(rkey), buf_(size, '\0') {
    SKV_CHECK(size > 0);
    ++live_count_;
}

void MemoryRegion::write(std::size_t offset, std::string_view bytes) {
    SKV_DCHECK(offset + bytes.size() <= buf_.size(), "MR write out of bounds");
    std::copy(bytes.begin(), bytes.end(), buf_.begin() + static_cast<std::ptrdiff_t>(offset));
}

std::string MemoryRegion::read(std::size_t offset, std::size_t len) const {
    SKV_DCHECK(offset + len <= buf_.size(), "MR read out of bounds");
    return std::string(buf_.data() + offset, len);
}

void MemoryRegion::write_wrapped(std::size_t offset, std::string_view bytes) {
    SKV_DCHECK(bytes.size() <= buf_.size());
    offset %= buf_.size();
    const std::size_t first = std::min(bytes.size(), buf_.size() - offset);
    std::copy(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(first),
              buf_.begin() + static_cast<std::ptrdiff_t>(offset));
    if (first < bytes.size()) {
        std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(first), bytes.end(),
                  buf_.begin());
    }
}

std::string MemoryRegion::read_wrapped(std::size_t offset, std::size_t len) const {
    SKV_DCHECK(len <= buf_.size());
    offset %= buf_.size();
    std::string out;
    out.reserve(len);
    const std::size_t first = std::min(len, buf_.size() - offset);
    out.append(buf_.data() + offset, first);
    if (first < len) out.append(buf_.data(), len - first);
    return out;
}

// --- CompletionChannel / CompletionQueue ------------------------------------

void CompletionChannel::fire() {
    if (!armed_ || !on_event_) return;
    armed_ = false;
    // Deliver asynchronously so CQ pushes from inside a handler cannot
    // reenter the handler.
    sim_.after(sim::Duration::zero(), on_event_);
}

void CompletionQueue::push(Completion c) {
    queue_.push_back(std::move(c));
    ++total_;
    if (channel_) channel_->fire();
}

std::vector<Completion> CompletionQueue::poll(std::size_t max) {
    std::vector<Completion> out;
    const std::size_t n = (max == 0) ? queue_.size() : std::min(max, queue_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return out;
}

// --- RdmaNetwork -------------------------------------------------------------

RdmaNetwork::RdmaNetwork(sim::Simulation& sim, net::Fabric& fabric,
                         const cpu::CostModel& costs)
    : sim_(sim), fabric_(fabric), costs_(costs), rng_(sim.fork_rng()),
      c_wr_posts_(obs_.counter_handle("wr_posts")),
      c_write_imm_(obs_.counter_handle("write_with_imm")),
      c_mr_regs_(obs_.counter_handle("mr_registrations")) {}

MemoryRegionPtr RdmaNetwork::register_mr(net::NodeRef node, std::size_t size) {
    auto mr = std::make_shared<MemoryRegion>(next_rkey_++, size);
    c_mr_regs_.incr();
    mrs_[mr->rkey()] = mr;
    if (node.core) node.core->consume(costs_.mr_register);
    return mr;
}

void RdmaNetwork::deregister_mr(std::uint32_t rkey) { mrs_.erase(rkey); }

MemoryRegionPtr RdmaNetwork::lookup_mr(std::uint32_t rkey) const {
    auto it = mrs_.find(rkey);
    return it == mrs_.end() ? nullptr : it->second.lock();
}

sim::Duration RdmaNetwork::wr_post_cost(net::EndpointId ep) {
    if (fabric_.is_companion(ep)) {
        // On-die doorbell from the SmartNIC's ARM cores: no PCIe crossing.
        return costs_.jittered(rng_, costs_.wr_post.scaled(0.6));
    }
    sim::Duration cost = costs_.jittered(rng_, costs_.wr_post);
    if (rng_.next_bool(costs_.wr_stall_prob)) cost += costs_.wr_stall;
    return cost;
}

sim::Duration RdmaNetwork::recv_post_cost() { return costs_.recv_post; }

// --- QueuePair ----------------------------------------------------------------

QueuePair::QueuePair(RdmaNetwork& net, net::NodeRef self,
                     CompletionQueuePtr send_cq, CompletionQueuePtr recv_cq)
    : net_(net), self_(self), send_cq_(std::move(send_cq)),
      recv_cq_(std::move(recv_cq)) {
    SKV_CHECK(self_.valid());
    SKV_CHECK(send_cq_ && recv_cq_);
    ++live_count_;
}

void QueuePair::connect_to(const QueuePairPtr& peer) {
    SKV_CHECK(peer && peer.get() != this);
    peer_ = peer;
}

void QueuePair::disconnect() { peer_.reset(); }

void QueuePair::post_recv(std::uint64_t wr_id, MemoryRegionPtr mr,
                          std::size_t offset, std::size_t len) {
    SKV_CHECK(mr);
    self_.core->consume(net_.recv_post_cost());
    recv_queue_.push_back(RecvWqe{wr_id, std::move(mr), offset, len});
    // A receive arriving while the RNR queue is non-empty unblocks the
    // oldest stalled inbound message (retransmission after RNR NAK).
    if (!rnr_queue_.empty()) {
        Inbound in = std::move(rnr_queue_.front());
        rnr_queue_.pop_front();
        consume_recv(std::move(in));
    }
}

void QueuePair::post_send(SendWr wr) {
    net_.c_wr_posts_.incr();
    if (wr.op == Opcode::kWriteWithImm) net_.c_write_imm_.incr();
    auto peer = peer_.lock();
    if (!peer) {
        self_.core->consume(net_.wr_post_cost(self_.ep));
        if (wr.signaled) {
            send_cq_->push(Completion{wr.wr_id, wr.op, /*success=*/false,
                                      false, 0, 0, {}});
        }
        return;
    }

    const std::size_t wire_bytes =
        (wr.op == Opcode::kRead ? wr.read_len : wr.payload.size()) +
        RdmaNetwork::kHeaderBytes;

    Inbound in;
    in.op = wr.op;
    in.payload = std::move(wr.payload);
    in.rkey = wr.rkey;
    in.remote_offset = wr.remote_offset;
    in.wrapped = wr.wrapped;
    in.has_imm = wr.has_imm;
    in.imm = wr.imm;

    const std::uint64_t wr_id = wr.wr_id;
    const Opcode op = wr.op;
    const bool signaled = wr.signaled;
    const std::size_t read_len = wr.read_len;
    auto self = shared_from_this();

    // WQE build + doorbell on the posting core; the message leaves the NIC
    // once the doorbell has rung. This per-WR cost is what the paper counts
    // per slave in the baseline and once per write in SKV.
    self_.core->submit(net_.wr_post_cost(self_.ep), [self, peer, in = std::move(in),
                                             wire_bytes, wr_id, op, signaled,
                                             read_len]() mutable {
        self->launch(std::move(peer), std::move(in), wire_bytes, wr_id, op,
                     signaled, read_len);
    });
}

void QueuePair::launch(QueuePairPtr peer, Inbound in, std::size_t wire_bytes,
                       std::uint64_t wr_id, Opcode op, bool signaled,
                       std::size_t read_len) {
    auto self = shared_from_this();
    net_.fabric().send(
        self_.ep, peer->self_.ep, wire_bytes,
        [self, peer, in = std::move(in), wr_id, op, signaled, read_len]() mutable {
            auto& net = self->net_;
            if (op == Opcode::kRead) {
                // The remote NIC DMA-reads the MR and returns the data; the
                // response consumes wire time back to the requester.
                MemoryRegionPtr mr = net.lookup_mr(in.rkey);
                std::string data;
                if (mr) {
                    data = in.wrapped
                               ? mr->read_wrapped(in.remote_offset, read_len)
                               : mr->read(in.remote_offset, read_len);
                }
                const bool ok = mr != nullptr;
                net.fabric().send(
                    peer->self_.ep, self->self_.ep,
                    read_len + RdmaNetwork::kHeaderBytes,
                    [self, wr_id, ok, data = std::move(data), read_len]() {
                        Completion c;
                        c.wr_id = wr_id;
                        c.op = Opcode::kRead;
                        c.success = ok;
                        c.byte_len = static_cast<std::uint32_t>(read_len);
                        c.inline_payload = std::move(data);
                        self->send_cq_->push(std::move(c));
                    });
                return;
            }
            peer->arrive(std::move(in));
            if (signaled) {
                // Hardware ACK flows back; the send completion needs no
                // remote CPU.
                net.simulation().after(net.ack_latency(), [self, wr_id, op]() {
                    Completion c;
                    c.wr_id = wr_id;
                    c.op = op;
                    self->send_cq_->push(std::move(c));
                });
            }
        });
}

void QueuePair::arrive(Inbound in) {
    switch (in.op) {
        case Opcode::kWrite: {
            MemoryRegionPtr mr = net_.lookup_mr(in.rkey);
            if (!mr) {
                // The target was deregistered while the WRITE was on the
                // wire (channel closed mid-flight). Hardware would raise a
                // remote-access error; the sim drops the op and counts it.
                net_.count_unknown_mr_write();
                break;
            }
            if (in.wrapped) {
                mr->write_wrapped(in.remote_offset, in.payload);
            } else {
                mr->write(in.remote_offset, in.payload);
            }
            // Plain WRITE is invisible to the remote CPU: no completion.
            break;
        }
        case Opcode::kWriteWithImm: {
            MemoryRegionPtr mr = net_.lookup_mr(in.rkey);
            if (!mr) {
                net_.count_unknown_mr_write();
                break;
            }
            if (in.wrapped) {
                mr->write_wrapped(in.remote_offset, in.payload);
            } else {
                mr->write(in.remote_offset, in.payload);
            }
            consume_recv(std::move(in));
            break;
        }
        case Opcode::kSend:
            consume_recv(std::move(in));
            break;
        case Opcode::kRead:
        case Opcode::kRecv:
            SKV_UNREACHABLE("unexpected inbound opcode");
            break;
    }
}

void QueuePair::consume_recv(Inbound in) {
    if (recv_queue_.empty()) {
        // Receiver-not-ready: the message waits for the next posted recv
        // (the RC retransmit protocol hides this from the sender).
        rnr_queue_.push_back(std::move(in));
        return;
    }
    RecvWqe wqe = std::move(recv_queue_.front());
    recv_queue_.pop_front();

    Completion c;
    c.wr_id = wqe.wr_id;
    c.op = Opcode::kRecv;
    c.has_imm = in.has_imm;
    c.imm = in.imm;
    c.byte_len = static_cast<std::uint32_t>(in.payload.size());
    c.remote_offset = in.remote_offset;
    if (in.op == Opcode::kSend) {
        // SEND lands in the posted receive buffer.
        const std::size_t n = std::min(in.payload.size(), wqe.len);
        if (wqe.mr && n > 0) {
            wqe.mr->write(wqe.offset, std::string_view(in.payload).substr(0, n));
        }
        c.inline_payload = std::move(in.payload);
    }
    recv_cq_->push(std::move(c));
}

} // namespace skv::rdma
