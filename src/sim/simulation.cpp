#include "sim/simulation.hpp"

#include "sim/check.hpp"

namespace skv::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
    // Register as the diagnostic context so failed SKV_CHECKs anywhere in
    // the process can print the seed and current sim time. Last constructed
    // wins; tests that hold two simulations at once get the newer one.
    diag().sim = this;
}

Simulation::~Simulation() {
    if (diag().sim == this) diag().sim = nullptr;
}

EventId Simulation::after(Duration delay, EventQueue::Callback fn) {
    SKV_CHECK(delay.ns() >= 0, "negative delay");
    return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulation::at(SimTime when, EventQueue::Callback fn) {
    SKV_CHECK(when >= now_, "scheduling into the past");
    return queue_.schedule(when, std::move(fn));
}

bool Simulation::step() {
    if (queue_.empty()) return false;
    auto [when, fn] = queue_.pop();
    SKV_CHECK(when >= now_, "event queue went backwards");
    now_ = when;
    ++executed_;
    fn();
    return true;
}

std::uint64_t Simulation::run_until(SimTime deadline) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.next_time() <= deadline) {
        step();
        ++n;
    }
    // Advance the clock to the deadline even if the queue drained early, so
    // repeated run_until() calls observe monotonic time.
    if (deadline != SimTime::max() && now_ < deadline) now_ = deadline;
    return n;
}

} // namespace skv::sim
