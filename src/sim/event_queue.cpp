#include "sim/event_queue.hpp"
#include "sim/check.hpp"


namespace skv::sim {

EventId EventQueue::schedule(SimTime at, Callback fn) {
    SKV_CHECK(fn, "scheduling an empty callback");
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{at, seq, std::move(fn)});
    live_.insert(seq);
    return EventId(seq);
}

bool EventQueue::cancel(EventId id) {
    if (!id.valid()) return false;
    return live_.erase(id.seq_) > 0;
}

void EventQueue::skim() {
    while (!heap_.empty() && !live_.contains(heap_.top().seq)) {
        heap_.pop();
    }
}

SimTime EventQueue::next_time() {
    skim();
    if (heap_.empty()) return SimTime::max();
    return heap_.top().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
    skim();
    SKV_CHECK(!heap_.empty(), "pop() on an empty event queue");
    // priority_queue::top() is const; the callback must be moved out, so
    // const_cast the entry. The entry is popped immediately afterwards, so
    // heap ordering (which ignores `fn`) is never observed in a moved-from
    // state.
    auto& top = const_cast<Entry&>(heap_.top());
    std::pair<SimTime, Callback> out{top.at, std::move(top.fn)};
    live_.erase(top.seq);
    heap_.pop();
    return out;
}

} // namespace skv::sim
