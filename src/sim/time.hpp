#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace skv::sim {

/// A point in simulated time, measured in integer nanoseconds since the
/// start of the simulation. A strong type so that times and durations are
/// not accidentally mixed with plain integers.
class SimTime {
public:
    constexpr SimTime() = default;
    constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

    [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
    [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

    constexpr auto operator<=>(const SimTime&) const = default;

    static constexpr SimTime zero() { return SimTime(0); }
    static constexpr SimTime max() { return SimTime(INT64_MAX); }

private:
    std::int64_t ns_ = 0;
};

/// A span of simulated time in integer nanoseconds. Durations add and scale;
/// times only differ and offset.
class Duration {
public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

    [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
    [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

    constexpr auto operator<=>(const Duration&) const = default;

    constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
    constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
    constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
    constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
    constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
    constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }

    /// Scale by a floating-point factor (e.g. a core slowdown ratio),
    /// rounding to the nearest nanosecond.
    [[nodiscard]] constexpr Duration scaled(double f) const {
        return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * f + 0.5));
    }

    static constexpr Duration zero() { return Duration(0); }

private:
    std::int64_t ns_ = 0;
};

constexpr Duration nanoseconds(std::int64_t v) { return Duration(v); }
constexpr Duration microseconds(std::int64_t v) { return Duration(v * 1000); }
constexpr Duration milliseconds(std::int64_t v) { return Duration(v * 1000 * 1000); }
constexpr Duration seconds(std::int64_t v) { return Duration(v * 1000 * 1000 * 1000); }

constexpr SimTime operator+(SimTime t, Duration d) { return SimTime(t.ns() + d.ns()); }
constexpr SimTime operator-(SimTime t, Duration d) { return SimTime(t.ns() - d.ns()); }
constexpr Duration operator-(SimTime a, SimTime b) { return Duration(a.ns() - b.ns()); }

/// Renders a time as "12.345ms" style text for traces and logs.
std::string to_string(SimTime t);
std::string to_string(Duration d);

} // namespace skv::sim
