#include "sim/time.hpp"

#include <cstdio>

namespace skv::sim {

namespace {

std::string format_ns(std::int64_t ns) {
    char buf[64];
    if (ns < 10'000) {
        std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
    } else if (ns < 10'000'000) {
        std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
    } else if (ns < 10'000'000'000LL) {
        std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
    }
    return buf;
}

} // namespace

std::string to_string(SimTime t) { return format_ns(t.ns()); }
std::string to_string(Duration d) { return format_ns(d.ns()); }

} // namespace skv::sim
