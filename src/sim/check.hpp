#pragma once

#include <cstdint>
#include <string>

namespace skv::sim {

class Simulation;

/// Process-wide diagnostic context consulted when a check fails. The
/// simulation registers itself on construction; components that know which
/// simulated node they are acting for set the node id through NodeScope.
/// The simulator is single-threaded, so one global context is enough.
struct DiagContext {
    const Simulation* sim = nullptr;
    /// Fabric endpoint id of the component currently executing, -1 when no
    /// component has claimed the scope (e.g. setup code).
    std::int64_t node = -1;
};

DiagContext& diag();

/// RAII marker: "events executing inside this scope belong to node `node`".
/// Placed at the entry points of simulated components (command handlers,
/// cron ticks, replication appliers) so failed checks can name the owner.
class NodeScope {
public:
    explicit NodeScope(std::int64_t node) : prev_(diag().node) {
        diag().node = node;
    }
    ~NodeScope() { diag().node = prev_; }

    NodeScope(const NodeScope&) = delete;
    NodeScope& operator=(const NodeScope&) = delete;

private:
    std::int64_t prev_;
};

/// Prints the failed expression, source location, optional message, and the
/// diagnostic context (seed, sim time, owning node, event count, trace
/// digest) to stderr, then aborts. Never returns.
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg);

} // namespace skv::sim

/// Always-on invariant check. On failure prints the simulation seed, current
/// sim time and owning node id before aborting, so any violation seen in CI
/// or a chaos run is immediately reproducible. Use for structural invariants
/// off the per-operation hot path. An optional second argument adds a
/// message: SKV_CHECK(x > 0, "x came from the wire").
#define SKV_CHECK(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) [[unlikely]] {                                        \
            ::skv::sim::check_failed("SKV_CHECK", #cond, __FILE__,         \
                                     __LINE__, std::string(__VA_ARGS__));  \
        }                                                                  \
    } while (0)

/// Debug-only check for per-operation hot paths; compiled out under NDEBUG
/// (like assert), but with the same rich failure output in debug and
/// sanitizer builds.
#ifdef NDEBUG
#define SKV_DCHECK(cond, ...)                  \
    do {                                       \
        if (false && !(cond)) { /* typecheck only */ \
        }                                      \
    } while (0)
#else
#define SKV_DCHECK(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) [[unlikely]] {                                        \
            ::skv::sim::check_failed("SKV_DCHECK", #cond, __FILE__,        \
                                     __LINE__, std::string(__VA_ARGS__));  \
        }                                                                  \
    } while (0)
#endif

/// Marks a branch the control flow must never reach (e.g. an unhandled
/// enum value). Always on.
#define SKV_UNREACHABLE(...)                                            \
    ::skv::sim::check_failed("SKV_UNREACHABLE", "reached", __FILE__,    \
                             __LINE__, std::string(__VA_ARGS__))
