#include "sim/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "sim/check.hpp"

namespace skv::sim {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<std::size_t>(kMajors) * kSub, 0),
      min_(std::numeric_limits<std::int64_t>::max()),
      max_(std::numeric_limits<std::int64_t>::min()) {}

std::size_t LatencyHistogram::bucket_of(std::int64_t ns) {
    if (ns < 0) ns = 0;
    const auto v = static_cast<std::uint64_t>(ns);
    if (v < kSub) return static_cast<std::size_t>(v); // first major is linear
    const int msb = 63 - std::countl_zero(v);
    const int major = msb - kSubBits + 1;
    const auto sub = static_cast<std::size_t>((v >> (msb - kSubBits)) & (kSub - 1));
    return static_cast<std::size_t>(major) * kSub + sub;
}

std::int64_t LatencyHistogram::bucket_upper(std::size_t idx) {
    const std::size_t major = idx / kSub;
    const std::size_t sub = idx % kSub;
    if (major == 0) return static_cast<std::int64_t>(sub);
    const int shift = static_cast<int>(major) - 1;
    const std::uint64_t base = static_cast<std::uint64_t>(kSub) << shift;
    const std::uint64_t width = 1ULL << shift;
    return static_cast<std::int64_t>(base + (sub + 1) * width - 1);
}

void LatencyHistogram::record_ns(std::int64_t ns) {
    if (ns < 0) ns = 0;
    const std::size_t b = bucket_of(ns);
    SKV_DCHECK(b < buckets_.size());
    ++buckets_[b];
    ++count_;
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
    sum_ += static_cast<double>(ns);
}

void LatencyHistogram::record(Duration d) { record_ns(d.ns()); }

void LatencyHistogram::merge(const LatencyHistogram& other) {
    SKV_CHECK(buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
}

std::int64_t LatencyHistogram::min_ns() const { return count_ ? min_ : 0; }
std::int64_t LatencyHistogram::max_ns() const { return count_ ? max_ : 0; }

double LatencyHistogram::mean_ns() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t LatencyHistogram::quantile_ns(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Fractional 0-based rank of the quantile sample. Returning the upper
    // bucket edge (the old behavior) is biased high by up to a full bucket
    // width, which dominates p99/p999 on small sample counts; instead
    // interpolate linearly inside the containing bucket by the fraction of
    // its samples below the rank, then clamp to the observed value range so
    // sparse tails (e.g. a single sample) report exact values.
    const double r = q * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t c = buckets_[i];
        if (c == 0) continue;
        if (r < static_cast<double>(seen) + static_cast<double>(c)) {
            const std::int64_t upper = bucket_upper(i);
            const std::int64_t lower = i == 0 ? 0 : bucket_upper(i - 1) + 1;
            const double frac =
                (r - static_cast<double>(seen)) / static_cast<double>(c);
            const auto v = static_cast<std::int64_t>(
                static_cast<double>(lower) +
                frac * static_cast<double>(upper - lower));
            return std::clamp(v, min_ns(), max_ns());
        }
        seen += c;
    }
    return max_ns();
}

void LatencyHistogram::clear() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = std::numeric_limits<std::int64_t>::min();
}

std::string LatencyHistogram::summary() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus",
                  static_cast<unsigned long long>(count_), mean_ns() / 1e3,
                  static_cast<double>(p50_ns()) / 1e3,
                  static_cast<double>(p99_ns()) / 1e3,
                  static_cast<double>(max_ns()) / 1e3);
    return buf;
}

} // namespace skv::sim
