#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace skv::sim {

/// The discrete-event simulation kernel. Owns the clock, the event queue,
/// the root RNG and the trace ring. Every simulated component holds a
/// reference to one Simulation and schedules its behaviour through it.
///
/// Single-threaded and deterministic: the same seed and the same sequence
/// of schedule() calls always produce the same execution.
class Simulation {
public:
    explicit Simulation(std::uint64_t seed = 0x5eed'0000'cafe'f00dULL);
    ~Simulation();

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedule `fn` to run after `delay` from now.
    EventId after(Duration delay, EventQueue::Callback fn);

    /// Schedule `fn` at an absolute time (must not be in the past).
    EventId at(SimTime when, EventQueue::Callback fn);

    /// Cancel a pending event; no-op if it already ran.
    bool cancel(EventId id) { return queue_.cancel(id); }

    /// Run until the event queue drains or `deadline` is reached, whichever
    /// comes first. Returns the number of events executed.
    std::uint64_t run_until(SimTime deadline);

    /// Run until the event queue drains completely.
    std::uint64_t run() { return run_until(SimTime::max()); }

    /// Execute at most one pending event. Returns false when idle.
    bool step();

    /// Root RNG. Components should take a fork() so their draws do not
    /// interleave with each other.
    Rng& rng() { return rng_; }

    /// Fork a component-private RNG stream.
    Rng fork_rng() { return rng_.fork(); }

    Trace& trace() { return trace_; }
    [[nodiscard]] const Trace& trace() const { return trace_; }
    /// Rolling determinism-audit digest (see Trace); convenience accessor
    /// for diagnostics and double-run comparisons.
    [[nodiscard]] std::uint64_t trace_digest() const { return trace_.digest(); }

    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
    [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t seed() const { return rng_.seed(); }

private:
    SimTime now_ = SimTime::zero();
    EventQueue queue_;
    Rng rng_;
    Trace trace_;
    std::uint64_t executed_ = 0;
};

} // namespace skv::sim
