#include "sim/trace.hpp"

namespace skv::sim {

namespace {

void fnv_mix(std::uint64_t& h, const std::string& s) {
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
}

void fnv_mix(std::uint64_t& h, std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= static_cast<unsigned char>(v >> (i * 8));
        h *= 0x100000001b3ULL;
    }
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
    fnv_mix(h, static_cast<std::int64_t>(v));
}

} // namespace

void Trace::emit(SimTime at, std::string component, std::string message) {
    if (!enabled_) return;
    ++total_;
    fnv_mix(digest_, at.ns());
    fnv_mix(digest_, component);
    fnv_mix(digest_, message);
    records_.push_back(TraceRecord{at, std::move(component), std::move(message)});
    while (records_.size() > capacity_) records_.pop_front();
}

void Trace::note(TraceEvent ev, SimTime at, std::uint64_t a, std::uint64_t b) {
    ++noted_;
    fnv_mix(digest_, static_cast<std::int64_t>(ev));
    fnv_mix(digest_, at.ns());
    fnv_mix(digest_, a);
    fnv_mix(digest_, b);
}

std::vector<std::string> Trace::format() const {
    std::vector<std::string> out;
    out.reserve(records_.size());
    for (const auto& r : records_) {
        out.push_back(to_string(r.at) + " [" + r.component + "] " + r.message);
    }
    return out;
}

void Trace::clear() {
    records_.clear();
    digest_ = 0xcbf29ce484222325ULL;
    total_ = 0;
    noted_ = 0;
}

} // namespace skv::sim
