#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace skv::sim {

/// Deterministic pseudo-random number generator used everywhere in the
/// simulation. xoshiro256** seeded through SplitMix64, so a single 64-bit
/// seed fully determines every experiment.
///
/// Not a std::uniform_random_bit_generator on purpose: the standard
/// distributions are implementation-defined, which would make results differ
/// between standard libraries. All distributions used by the simulator are
/// implemented here with fixed algorithms.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed'0000'cafe'f00dULL);

    /// Next raw 64 random bits.
    std::uint64_t next_u64();

    /// Uniform in [0, n). n must be > 0. Uses rejection sampling, so the
    /// result is exactly uniform.
    std::uint64_t next_below(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_range(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Bernoulli trial with probability p of returning true.
    bool next_bool(double p);

    /// Exponentially distributed double with the given mean (>0).
    double next_exponential(double mean);

    /// Fork a child generator whose stream is independent of (but fully
    /// determined by) this one. Used to give each simulated component its
    /// own stream so adding a component does not perturb the others.
    Rng fork();

    /// The seed this generator was constructed with (for logging).
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

private:
    std::uint64_t seed_;
    std::array<std::uint64_t, 4> s_{};
};

/// Zipfian generator over [0, n) with exponent theta (0 <= theta < 1 means
/// mild skew; YCSB default is 0.99). Uses the Gray/Jim Gray "quick zipf"
/// method with precomputed constants, the standard approach in KV
/// benchmarking (YCSB's ZipfianGenerator).
class ZipfianGenerator {
public:
    ZipfianGenerator(std::uint64_t n, double theta);

    std::uint64_t next(Rng& rng);

    /// Draw over an item count that may have grown since construction (the
    /// YCSB "latest" chooser draws over a keyspace that inserts keep
    /// extending). The zeta constant is extended incrementally — only the
    /// new items' terms are summed — exactly as YCSB's ZipfianGenerator
    /// handles allowItemCountDecrease=false growth. `n` must never shrink.
    std::uint64_t next(Rng& rng, std::uint64_t n);

    [[nodiscard]] std::uint64_t n() const { return n_; }
    [[nodiscard]] double theta() const { return theta_; }

private:
    static double zeta(std::uint64_t n, double theta);
    void grow_to(std::uint64_t n);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
};

} // namespace skv::sim
