#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace skv::sim {

/// HDR-style latency histogram: log2 major buckets, each split into 32
/// linear sub-buckets, giving ~3% relative error across the full int64
/// nanosecond range with a fixed, small footprint. Records durations; all
/// queries are in nanoseconds.
class LatencyHistogram {
public:
    LatencyHistogram();

    void record(Duration d);
    void record_ns(std::int64_t ns);

    /// Merge another histogram into this one.
    void merge(const LatencyHistogram& other);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] std::int64_t min_ns() const;
    [[nodiscard]] std::int64_t max_ns() const;
    [[nodiscard]] double mean_ns() const;

    /// Value at quantile q in [0, 1], linearly interpolated inside the
    /// bucket containing the q-th sample and clamped to [min_ns, max_ns].
    /// q=0.5 -> median, q=0.99 -> p99.
    [[nodiscard]] std::int64_t quantile_ns(double q) const;

    [[nodiscard]] double mean_us() const { return mean_ns() / 1e3; }
    [[nodiscard]] std::int64_t p50_ns() const { return quantile_ns(0.50); }
    [[nodiscard]] std::int64_t p99_ns() const { return quantile_ns(0.99); }
    [[nodiscard]] std::int64_t p999_ns() const { return quantile_ns(0.999); }

    void clear();

    /// One-line summary for logs: count/mean/p50/p99/max.
    [[nodiscard]] std::string summary() const;

private:
    static constexpr int kSubBits = 5; // 32 sub-buckets per power of two
    static constexpr int kSub = 1 << kSubBits;
    static constexpr int kMajors = 64 - kSubBits;

    static std::size_t bucket_of(std::int64_t ns);
    static std::int64_t bucket_upper(std::size_t idx);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace skv::sim
