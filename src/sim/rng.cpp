#include "sim/rng.hpp"

#include <cmath>

#include "sim/check.hpp"

namespace skv::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix cannot produce four
    // zero words from any seed, but keep the guard for clarity.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
    SKV_DCHECK(n > 0);
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % n;
    }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
    SKV_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64()); // full range
    return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

double Rng::next_exponential(double mean) {
    SKV_DCHECK(mean > 0.0);
    // Avoid log(0) by mapping the [0,1) sample into (0,1].
    const double u = 1.0 - next_double();
    return -mean * std::log(u);
}

Rng Rng::fork() {
    return Rng(next_u64());
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
    SKV_CHECK(n > 0);
    SKV_CHECK(theta >= 0.0 && theta < 1.0);
    zetan_ = zeta(n, theta);
    zeta2theta_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
}

void ZipfianGenerator::grow_to(std::uint64_t n) {
    SKV_CHECK(n >= n_); // the insert frontier only advances
    if (n == n_) return;
    for (std::uint64_t i = n_ + 1; i <= n; ++i) {
        zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    n_ = n;
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::next(Rng& rng, std::uint64_t n) {
    grow_to(n);
    return next(rng);
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

} // namespace skv::sim
