#include "sim/check.hpp"

#include <cstdio>
#include <cstdlib>

#include "sim/simulation.hpp"

namespace skv::sim {

DiagContext& diag() {
    static DiagContext ctx;
    return ctx;
}

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const std::string& msg) {
    const DiagContext& ctx = diag();
    std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n", kind, expr, file,
                 line);
    if (!msg.empty()) {
        std::fprintf(stderr, "  message: %s\n", msg.c_str());
    }
    if (ctx.sim != nullptr) {
        std::fprintf(
            stderr,
            "  seed=0x%016llx sim_time=%s node=%lld events=%llu "
            "trace_digest=0x%016llx\n",
            static_cast<unsigned long long>(ctx.sim->seed()),
            to_string(ctx.sim->now()).c_str(),
            static_cast<long long>(ctx.node),
            static_cast<unsigned long long>(ctx.sim->events_executed()),
            static_cast<unsigned long long>(ctx.sim->trace_digest()));
    } else {
        std::fprintf(stderr, "  seed=<no simulation registered> node=%lld\n",
                     static_cast<long long>(ctx.node));
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace skv::sim
