#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace skv::sim {

/// Opaque handle to a scheduled event, used for cancellation.
class EventId {
public:
    constexpr EventId() = default;

    [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
    constexpr bool operator==(const EventId&) const = default;

private:
    friend class EventQueue;
    constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
    std::uint64_t seq_ = 0;
};

/// Priority queue of timestamped callbacks. Ties in time are broken by
/// insertion order (FIFO), which together with the seeded RNG makes the
/// whole simulation deterministic.
///
/// Cancellation is lazy: a cancelled event stays in the heap and is skipped
/// when it reaches the top. That keeps push/pop at O(log n) with no
/// secondary heap index.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedule `fn` at absolute time `at`. Events scheduled for the same
    /// time fire in the order they were scheduled.
    EventId schedule(SimTime at, Callback fn);

    /// Cancel a previously scheduled event. Returns false (and does nothing)
    /// if the event already fired or was already cancelled.
    bool cancel(EventId id);

    [[nodiscard]] bool empty() const { return live_.empty(); }
    [[nodiscard]] std::size_t size() const { return live_.size(); }

    /// Time of the earliest live event; SimTime::max() when empty.
    [[nodiscard]] SimTime next_time();

    /// Pop and return the earliest live event. Must not be called when
    /// empty(). Returns {time, callback}.
    std::pair<SimTime, Callback> pop();

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq = 0;
        Callback fn;

        bool operator>(const Entry& o) const {
            if (at != o.at) return at > o.at;
            return seq > o.seq;
        }
    };

    /// Remove cancelled entries sitting at the top of the heap.
    void skim();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t next_seq_ = 1;
    std::unordered_set<std::uint64_t> live_;
};

} // namespace skv::sim
