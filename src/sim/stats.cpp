#include "sim/stats.hpp"

namespace skv::sim {

std::string StatsRegistry::format() const {
    std::string out;
    for (const auto& [k, v] : counters_) {
        out += k;
        out += '=';
        out += std::to_string(v);
        out += '\n';
    }
    for (const auto& [k, v] : gauges_) {
        out += k;
        out += '=';
        out += std::to_string(v);
        out += '\n';
    }
    return out;
}

} // namespace skv::sim
