#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace skv::sim {

/// One trace record: a timestamped, categorised message emitted by a
/// simulated component. Used for debugging and for determinism checks
/// (two runs with the same seed must produce identical digests).
struct TraceRecord {
    SimTime at;
    std::string component;
    std::string message;
};

/// Bounded in-memory trace ring. Keeps the most recent `capacity` records
/// and a rolling FNV-1a digest over everything ever emitted, so determinism
/// can be asserted without retaining the full history.
class Trace {
public:
    explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

    void emit(SimTime at, std::string component, std::string message);

    [[nodiscard]] const std::deque<TraceRecord>& records() const { return records_; }
    [[nodiscard]] std::uint64_t digest() const { return digest_; }
    [[nodiscard]] std::uint64_t total_emitted() const { return total_; }

    /// Enable/disable recording (digest still accumulates when disabled is
    /// false; when fully disabled both stop).
    void set_enabled(bool on) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Render the retained records as lines, newest last.
    [[nodiscard]] std::vector<std::string> format() const;

    void clear();

private:
    std::size_t capacity_;
    bool enabled_ = true;
    std::deque<TraceRecord> records_;
    std::uint64_t digest_ = 0xcbf29ce484222325ULL; // FNV offset basis
    std::uint64_t total_ = 0;
};

} // namespace skv::sim
