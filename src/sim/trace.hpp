#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace skv::sim {

/// One trace record: a timestamped, categorised message emitted by a
/// simulated component. Used for debugging and for determinism checks
/// (two runs with the same seed must produce identical digests).
struct TraceRecord {
    SimTime at;
    std::string component;
    std::string message;
};

/// Compact event kinds mixed into the determinism digest by Trace::note().
/// Values are part of the digest, so append only — reordering or renumbering
/// invalidates recorded hashes.
enum class TraceEvent : std::uint16_t {
    kFabricSend = 1,
    kFabricDeliver = 2,
    kFabricDropInFlight = 3,
    kFabricFaultDrop = 4,
    kFabricSever = 5,
    kFabricRestore = 6,
    // Object-lifetime events: channel teardown is part of the audited
    // behaviour (a run that reclaims a connection at a different sim time
    // is a different run).
    kChannelClose = 7,
    kHandlerClear = 8,
};

/// Bounded in-memory trace ring. Keeps the most recent `capacity` records
/// and a rolling FNV-1a digest over everything ever emitted, so determinism
/// can be asserted without retaining the full history.
///
/// Two feeds share the digest: emit() records human-readable strings (and
/// can be disabled), while note() mixes fixed-width event tuples
/// (event type, sim time, endpoints) with no allocation and is always on —
/// it is the determinism auditor's signal. Two runs of the same seeded
/// scenario must produce identical digests; the first divergent event is
/// where reproducibility broke.
class Trace {
public:
    explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

    void emit(SimTime at, std::string component, std::string message);

    /// Audit feed: fold one simulation event into the rolling digest.
    /// Cheap enough for per-message call sites (a few integer multiplies);
    /// never retained as a record and never disabled.
    void note(TraceEvent ev, SimTime at, std::uint64_t a = 0,
              std::uint64_t b = 0);

    [[nodiscard]] const std::deque<TraceRecord>& records() const { return records_; }
    [[nodiscard]] std::uint64_t digest() const { return digest_; }
    [[nodiscard]] std::uint64_t total_emitted() const { return total_; }
    /// Number of note() calls folded into the digest.
    [[nodiscard]] std::uint64_t total_noted() const { return noted_; }

    /// Enable/disable recording (digest still accumulates when disabled is
    /// false; when fully disabled both stop).
    void set_enabled(bool on) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Render the retained records as lines, newest last.
    [[nodiscard]] std::vector<std::string> format() const;

    void clear();

private:
    std::size_t capacity_;
    bool enabled_ = true;
    std::deque<TraceRecord> records_;
    std::uint64_t digest_ = 0xcbf29ce484222325ULL; // FNV offset basis
    std::uint64_t total_ = 0;
    std::uint64_t noted_ = 0;
};

} // namespace skv::sim
