#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace skv::sim {

/// A named bag of monotonically increasing counters and last-value gauges.
/// Components register what they touch lazily; experiment harnesses read the
/// whole registry at the end of a run. std::map keeps iteration order
/// deterministic for golden-output tests.
class StatsRegistry {
public:
    /// Increment counter `name` by `delta` (default 1).
    void incr(const std::string& name, std::uint64_t delta = 1) {
        counters_[name] += delta;
    }

    /// Set gauge `name` to `value`.
    void set_gauge(const std::string& name, std::int64_t value) {
        gauges_[name] = value;
    }

    [[nodiscard]] std::uint64_t counter(const std::string& name) const {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    [[nodiscard]] std::int64_t gauge(const std::string& name) const {
        auto it = gauges_.find(name);
        return it == gauges_.end() ? 0 : it->second;
    }

    [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, std::int64_t>& gauges() const {
        return gauges_;
    }

    void clear() {
        counters_.clear();
        gauges_.clear();
    }

    /// "name=value" lines, sorted by name.
    [[nodiscard]] std::string format() const;

private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, std::int64_t> gauges_;
};

} // namespace skv::sim
