#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace skv::server {

/// Framing for server-to-server and server-to-NIC messages (replication,
/// synchronization, probes). Client traffic speaks RESP; the internal
/// control plane uses this compact tagged framing, which is what Nic-KV
/// parses on the SmartNIC ("binary framing, not RESP" — see
/// CostModel::nic_repl_parse).
///
/// Wire form: 1 tag byte + 8-byte little-endian i64 field + body bytes.
struct NodeMsg {
    enum class Type : char {
        // Slave -> Nic-KV: initial synchronization request. field = the
        // slave's replication offset; body = "<name>" of the slave.
        kInitSync = 'I',
        // Nic-KV -> master: a slave wants to synchronize. field = slave
        // offset; body = slave name.
        kSyncNotify = 'N',
        // Master -> slave (direct): full snapshot. field = master offset at
        // snapshot time; body = RDB bytes.
        kFullSync = 'F',
        // Master -> slave (direct): backlog range. field = start offset;
        // body = raw replication stream bytes.
        kBacklog = 'B',
        // Master -> Nic-KV (SKV) or master -> slave (baseline): replication
        // stream data. field = stream offset of the first byte; body = one
        // or more RESP-encoded write commands.
        kReplData = 'R',
        // Slave -> master: progress report. field = slave offset.
        kAck = 'K',
        // Nic-KV -> any node: liveness probe. field = probe sequence.
        kProbe = 'P',
        // Node -> Nic-KV: probe reply. field = probe sequence; body =
        // "<role>:<offset>".
        kProbeAck = 'A',
        // Nic-KV -> master: slave recovered behind the stream, serve it a
        // partial resync. field = slave offset; body = slave name.
        kResyncRequest = 'S',
        // Nic-KV -> slave: assume mastership / step back down.
        kPromote = 'U',
        kDemote = 'D',
        // Baseline protocol: slave -> master over its own channel.
        // field = slave offset; body = slave name.
        kSync = 'Y',
        // Nic-KV -> master: failure-detector status. field = number of
        // available slaves; body = comma-separated invalid slave names.
        kSlaveCount = 'C',
        // --- replication protocol menu (DESIGN.md §13) -------------------
        // Nic-KV -> slave (chain mode): successor assignment after a chain
        // (re-)splice. field = the NIC's fan-out cursor at assignment time,
        // which becomes the member's read floor; body = successor
        // "<name>@<ep>", "" for the tail, "-" to leave the chain (the
        // master died and commits no longer flow through it).
        kChainSet = 'H',
        // Chain-forward replication data: Nic-KV -> head, then each member
        // to its successor. Same payload shape as kReplData: field = stream
        // offset of the first byte; body = RESP-encoded write commands.
        kChainData = 'X',
        // Slave -> Nic-KV (quorum mode): per-apply progress report feeding
        // the NIC-side ack aggregation. field = applied offset; body =
        // slave name.
        kQuorumAck = 'Q',
        // Nic-KV -> master (quorum mode): majority watermark. field = the
        // highest offset acknowledged by a slave majority (counting the
        // master's own copy toward the replica majority).
        kQuorumCommit = 'M',
        // Master -> Nic-KV (quorum mode): ABD read-phase write-back. A
        // parked read pushes the not-yet-majority backlog suffix back
        // through the NIC so the state it observed reaches a majority
        // before the reply releases. field = start offset; body = stream
        // bytes. The NIC re-fans it to lagging replicas as kReplData.
        kReadRepair = 'E',
    };

    Type type;
    std::int64_t field = 0;
    std::string body;

    [[nodiscard]] std::string encode() const;
    static std::optional<NodeMsg> decode(std::string_view wire);
};

/// Every NodeMsg::Type, exactly once. decode() validates incoming tag bytes
/// against this list and the protocol tests derive tag-uniqueness and
/// round-trip coverage from it, so a new enum value only needs to be added
/// here (simlint3's unhandled-tag rule fails the build if the list or any
/// dispatch switch goes stale).
inline constexpr NodeMsg::Type kNodeMsgTypes[] = {
    NodeMsg::Type::kInitSync,   NodeMsg::Type::kSyncNotify,
    NodeMsg::Type::kFullSync,   NodeMsg::Type::kBacklog,
    NodeMsg::Type::kReplData,   NodeMsg::Type::kAck,
    NodeMsg::Type::kProbe,      NodeMsg::Type::kProbeAck,
    NodeMsg::Type::kResyncRequest, NodeMsg::Type::kPromote,
    NodeMsg::Type::kDemote,     NodeMsg::Type::kSync,
    NodeMsg::Type::kSlaveCount, NodeMsg::Type::kChainSet,
    NodeMsg::Type::kChainData,  NodeMsg::Type::kQuorumAck,
    NodeMsg::Type::kQuorumCommit, NodeMsg::Type::kReadRepair,
};

/// Duplicate-suppression token for client write retries. A retrying client
/// prefixes each write with `WSEQ <client> <seq>`; a server that already
/// executed (client, seq) replays the cached reply instead of re-applying
/// the command, which is what makes write retries across a master crash /
/// failover exactly-once. The token is replicated to slaves inside the
/// stream (`WSEQR <client> <seq> <reply>` prefix), so a promoted stand-in
/// suppresses retries of writes it already received via fan-out.
struct WriteTag {
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
};

/// If `argv` carries the client-side `WSEQ` envelope, strip it in place
/// (argv becomes the real command) and fill `tag`. Returns false — with
/// argv untouched — for untagged or malformed commands.
bool strip_write_tag(std::vector<std::string>& argv, WriteTag* tag);

/// Build the replicated form of a tagged write for the repl stream:
/// `WSEQR <client> <seq> <reply>` + the command's repl argv.
[[nodiscard]] std::vector<std::string> make_replicated_tagged(
    const WriteTag& tag, const std::string& reply,
    const std::vector<std::string>& repl_argv);

/// Slave side of make_replicated_tagged: strip the `WSEQR` envelope in
/// place, filling `tag` and the master's cached `reply`. Returns false —
/// argv untouched — for untagged stream commands.
bool strip_replicated_tag(std::vector<std::string>& argv, WriteTag* tag,
                          std::string* reply);

} // namespace skv::server
