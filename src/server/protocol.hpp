#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace skv::server {

/// Framing for server-to-server and server-to-NIC messages (replication,
/// synchronization, probes). Client traffic speaks RESP; the internal
/// control plane uses this compact tagged framing, which is what Nic-KV
/// parses on the SmartNIC ("binary framing, not RESP" — see
/// CostModel::nic_repl_parse).
///
/// Wire form: 1 tag byte + 8-byte little-endian i64 field + body bytes.
struct NodeMsg {
    enum class Type : char {
        // Slave -> Nic-KV: initial synchronization request. field = the
        // slave's replication offset; body = "<name>" of the slave.
        kInitSync = 'I',
        // Nic-KV -> master: a slave wants to synchronize. field = slave
        // offset; body = slave name.
        kSyncNotify = 'N',
        // Master -> slave (direct): full snapshot. field = master offset at
        // snapshot time; body = RDB bytes.
        kFullSync = 'F',
        // Master -> slave (direct): backlog range. field = start offset;
        // body = raw replication stream bytes.
        kBacklog = 'B',
        // Master -> Nic-KV (SKV) or master -> slave (baseline): replication
        // stream data. field = stream offset of the first byte; body = one
        // or more RESP-encoded write commands.
        kReplData = 'R',
        // Slave -> master: progress report. field = slave offset.
        kAck = 'K',
        // Nic-KV -> any node: liveness probe. field = probe sequence.
        kProbe = 'P',
        // Node -> Nic-KV: probe reply. field = probe sequence; body =
        // "<role>:<offset>".
        kProbeAck = 'A',
        // Nic-KV -> master: slave recovered behind the stream, serve it a
        // partial resync. field = slave offset; body = slave name.
        kResyncRequest = 'S',
        // Nic-KV -> slave: assume mastership / step back down.
        kPromote = 'U',
        kDemote = 'D',
        // Baseline protocol: slave -> master over its own channel.
        // field = slave offset; body = slave name.
        kSync = 'Y',
        // Nic-KV -> master: failure-detector status. field = number of
        // available slaves; body = comma-separated invalid slave names.
        kSlaveCount = 'C',
    };

    Type type;
    std::int64_t field = 0;
    std::string body;

    [[nodiscard]] std::string encode() const;
    static std::optional<NodeMsg> decode(std::string_view wire);
};

} // namespace skv::server
