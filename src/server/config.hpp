#pragma once

#include <cstdint>
#include <string>

#include "server/reliable.hpp"
#include "sim/time.hpp"

namespace skv::server {

/// Which transport a server speaks to its clients and peers.
enum class Transport : std::uint8_t { kTcp, kRdma };

/// Replication role of a Host-KV instance.
enum class Role : std::uint8_t { kStandalone, kMaster, kSlave };

/// Which replication protocol the cluster runs (DESIGN.md §13, ROADMAP
/// item 4). kFanout is the paper's asynchronous master→Nic-KV→slaves
/// fan-out (plus PR 6's commit gating). kChain is chain replication:
/// writes flow NIC→head→…→tail along NIC-maintained successor tables, a
/// commit requires every valid chain member's ack (tail semantics in an
/// in-order chain), and the tail may serve reads under a probe lease.
/// kQuorum is ABD-flavored majority replication: the NIC aggregates slave
/// acks and releases the commit watermark at a replica majority, with a
/// read-phase write-back for parked linearizable reads.
enum class ReplicationMode : std::uint8_t { kFanout, kChain, kQuorum };

const char* to_string(Transport t);
const char* to_string(Role r);
const char* to_string(ReplicationMode m);

struct ServerConfig {
    std::string name = "kv";
    Transport transport = Transport::kRdma;
    std::uint16_t port = 6379;  // simlint3:allow(knob-drift) endpoint identity assigned by Cluster, not a tunable

    /// SKV mode: the master posts one replication request to Nic-KV per
    /// write instead of fanning out to every slave itself.
    bool offload_replication = false;

    /// Replication backlog ring capacity.
    std::size_t backlog_bytes = 1 << 20;

    /// Paper §III-D knobs: writes fail when fewer than `min_slaves` replicas
    /// are reachable, and replication progress lagging more than
    /// `max_repl_lag_bytes` behind returns an error to writing clients.
    int min_slaves = 0;
    std::int64_t max_repl_lag_bytes = 256 * 1024 * 1024;

    /// Slave -> master progress report interval (paper Fig. 9 step 3).
    sim::Duration ack_interval{sim::milliseconds(100)};

    /// serverCron cadence: active expiry, dict rehash steps, bookkeeping.
    sim::Duration cron_interval{sim::milliseconds(100)};

    /// Active-expire sample size per cron tick.
    std::size_t expire_samples = 20;

    /// Wrap every node-to-node link (replication, probes, registration) in
    /// the sequence-numbered retransmitting layer so injected loss degrades
    /// throughput instead of silently losing replicated writes.
    bool reliable_node_links = true;
    ReliableParams reliable{};

    /// Retry interval for node-link connection handshakes (the CM exchange
    /// itself rides unprotected fabric messages and can be lost).
    sim::Duration connect_retry{sim::milliseconds(500)};

    /// An SKV slave that has heard no probe from Nic-KV for this long
    /// re-registers: a one-directional NIC->slave partition would otherwise
    /// leave it invalid forever (it has nothing unacked, so its reliable
    /// layer never reports the link broken).
    sim::Duration probe_silence_timeout{sim::seconds(3)};

    /// --- node-failure robustness ------------------------------------------
    /// Commit gating: when > 0, a master parks each reply until at least
    /// min(wait_for_slaves, registered valid slaves) replicas have
    /// acknowledged the write's stream offset; reads park until the offset
    /// current at read time is similarly acknowledged, so un-acked writes
    /// are never observable (no dirty reads that a failover could lose).
    /// 0 (default) replies as soon as the command executed locally.
    int wait_for_slaves = 0;
    /// Parked replies give up after this long with -WAITTIMEOUT: the write
    /// IS applied locally but not known replicated (maybe-applied from the
    /// client's point of view — retry with the same WSEQ token).
    sim::Duration wait_timeout{sim::milliseconds(500)};
    /// Slaves send a progress report immediately after applying replicated
    /// frames instead of only every ack_interval. Commit gating needs this
    /// for sane write latency.
    bool ack_on_apply = false;
    /// Periodic RDB persistence: every persist_interval the server saves a
    /// snapshot + its replication offset, which is all the state a *cold*
    /// restart recovers from. Zero (default) disables persistence — a cold
    /// restart then comes back empty at offset 0 (full resync).
    sim::Duration persist_interval{};
    /// Retained duplicate-suppression entries, one per writing client.
    /// Beyond the cap the least-recently-active client is evicted (LRU),
    /// and a master replicates each eviction through the stream so slave
    /// tables stay bounded in lockstep.
    std::size_t dup_table_max = 1024;
    /// Redis default: replicas serve reads from their (possibly lagging)
    /// copy. Set false for linearizable deployments: slaves answer reads
    /// with -READONLY so retrying clients route every operation to the
    /// current master.
    bool serve_stale_reads = true;

    /// --- replication protocol menu ----------------------------------------
    /// Which protocol Nic-KV executes for this cluster. Chain and quorum
    /// modes require the SKV offload topology (Cluster enforces this).
    ReplicationMode replication_mode = ReplicationMode::kFanout;
    /// Chain mode: the tail serves reads only while it has heard a NIC
    /// probe within this window (and has applied up to its assignment-time
    /// read floor). The lease MUST be shorter than the failure detector's
    /// invalidation latency (waiting_time + probe_interval, and the
    /// reliable-layer retransmit-exhaustion time) or a partitioned stale
    /// tail could keep answering reads the surviving chain no longer
    /// includes in its commits.
    sim::Duration chain_read_lease{sim::milliseconds(400)};

    /// Commands whose service time (queue wait + execution on the core)
    /// meets this threshold are recorded in the SLOWLOG ring (Redis default:
    /// 10ms). Zero records everything; negative disables recording.
    sim::Duration slowlog_threshold{sim::milliseconds(10)};
    /// Maximum retained SLOWLOG entries (oldest evicted first).
    std::size_t slowlog_max_len = 128;
    /// LATENCY HISTORY ring depth per event class.
    std::size_t latency_history_len = 16;
};

} // namespace skv::server
