#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace skv::server {

/// Retransmission knobs for one reliable node link.
struct ReliableParams {
    /// First retransmission timeout; doubles (times `backoff`) on each
    /// consecutive unanswered retransmission up to `max_rto`.
    sim::Duration initial_rto{sim::milliseconds(5)};
    sim::Duration max_rto{sim::milliseconds(160)};
    double backoff = 2.0;
    /// After this many retransmissions of the same message the link is
    /// declared broken and `on_broken` fires (the failure detector / owner
    /// decides what to do — the channel itself stops trying).
    int max_retries = 8;
    /// Acks are cumulative and delayed to amortize their cost; duplicates
    /// and out-of-order arrivals trigger an immediate ack instead.
    sim::Duration ack_delay{sim::microseconds(200)};
    /// Out-of-order messages buffered while a hole is outstanding; anything
    /// beyond the window is dropped and recovered by retransmission.
    std::size_t reorder_window = 64;
};

/// Sequence numbers + ack-driven retransmission + duplicate suppression on
/// top of any net::Channel. The node-message path (master -> Nic-KV
/// replication requests, Nic-KV -> slave fan-out, probes and acks) runs
/// through this so an injected-loss link degrades throughput instead of
/// silently losing replicated writes (paper §III-D assumes the transport
/// retransmits; under fault injection we must do it ourselves).
///
/// Wire format, all little-endian:
///   'D' seq(8) crc32(4) payload   data, seq starts at 1
///   'A' cum_ack(8)                cumulative: every seq <= cum_ack arrived
///
/// The layer is deterministic: no RNG, all timing from ReliableParams.
class ReliableChannel final
    : public net::Channel,
      public std::enable_shared_from_this<ReliableChannel> {
public:
    /// Wrap `inner`; the wrapper installs its own inner receive handler
    /// immediately (shared_from_this forbids doing this in a constructor).
    /// When `reg` is given, the owner's aggregate rel.* counters
    /// (retransmits/dups/crc drops/acks) are pre-resolved once here and the
    /// retransmit hot path pays a pointer bump instead of a map lookup.
    static std::shared_ptr<ReliableChannel> wrap(sim::Simulation& sim,
                                                 net::ChannelPtr inner,
                                                 ReliableParams params = {},
                                                 obs::Registry* reg = nullptr);

    // --- net::Channel ----------------------------------------------------
    void send(std::string payload) override;
    void set_on_message(MessageHandler handler) override;
    void close() override;
    [[nodiscard]] bool open() const override {
        return !broken_ && inner_->open();
    }
    [[nodiscard]] net::EndpointId peer() const override {
        return inner_->peer();
    }
    [[nodiscard]] std::size_t backlog_bytes() const override {
        return inner_->backlog_bytes();
    }
    [[nodiscard]] std::uint64_t flow_id() const override {
        return inner_->flow_id();
    }

    /// Fires once, when max_retries is exhausted on some message.
    void set_on_broken(std::function<void()> fn) { on_broken_ = std::move(fn); }
    [[nodiscard]] bool broken() const { return broken_; }
    [[nodiscard]] const net::ChannelPtr& inner() const { return inner_; }

    // --- introspection for tests and stats --------------------------------
    [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
    [[nodiscard]] std::uint64_t dups_suppressed() const { return dups_suppressed_; }
    [[nodiscard]] std::uint64_t crc_drops() const { return crc_drops_; }
    [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
    [[nodiscard]] std::size_t unacked_count() const { return unacked_.size(); }

private:
    ReliableChannel(sim::Simulation& sim, net::ChannelPtr inner,
                    ReliableParams params)
        : sim_(sim), inner_(std::move(inner)), params_(params) {}

    static std::uint32_t crc32(std::string_view bytes);

    void on_inner_message(std::string payload);
    void handle_data(std::uint64_t seq, std::string payload);
    void deliver(std::string payload);
    void send_ack_now();
    void schedule_ack(bool immediate);
    void arm_rto();
    void on_rto(std::uint64_t epoch);

    sim::Simulation& sim_;
    net::ChannelPtr inner_;
    ReliableParams params_;

    // Sender side.
    struct Unacked {
        std::uint64_t seq;
        std::string wire; // full encoded data frame, reusable verbatim
        int retries = 0;
    };
    std::uint64_t next_seq_ = 1;
    std::deque<Unacked> unacked_;
    sim::Duration rto_{sim::Duration::zero()};
    std::uint64_t rto_epoch_ = 0; // invalidates stale timer callbacks
    bool rto_armed_ = false;

    // Receiver side.
    std::uint64_t delivered_seq_ = 0; // highest in-order seq delivered
    std::map<std::uint64_t, std::string> reorder_;
    bool ack_scheduled_ = false;
    std::uint64_t ack_epoch_ = 0;

    MessageHandler on_message_;
    std::deque<std::string> pending_; // delivered before a handler existed
    std::function<void()> on_broken_;
    bool broken_ = false;
    bool closed_ = false;

    std::uint64_t retransmits_ = 0;
    std::uint64_t dups_suppressed_ = 0;
    std::uint64_t crc_drops_ = 0;
    std::uint64_t acks_sent_ = 0;

    // Owner-scoped aggregate counters, pre-resolved in wrap(). Inert when
    // no registry was supplied.
    obs::Counter c_retransmits_;
    obs::Counter c_dups_;
    obs::Counter c_crc_drops_;
    obs::Counter c_acks_;
};

using ReliableChannelPtr = std::shared_ptr<ReliableChannel>;

} // namespace skv::server
