#include "server/protocol.hpp"

namespace skv::server {

std::string NodeMsg::encode() const {
    std::string out;
    out.reserve(9 + body.size());
    out.push_back(static_cast<char>(type));
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>(static_cast<std::uint64_t>(field) >> (i * 8)));
    }
    out += body;
    return out;
}

std::optional<NodeMsg> NodeMsg::decode(std::string_view wire) {
    if (wire.size() < 9) return std::nullopt;
    NodeMsg m;
    m.type = static_cast<Type>(wire[0]);
    bool known = false;
    for (const Type t : kNodeMsgTypes) {
        if (t == m.type) {
            known = true;
            break;
        }
    }
    if (!known) return std::nullopt;
    std::uint64_t f = 0;
    for (int i = 0; i < 8; ++i) {
        f |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                 wire[1 + static_cast<std::size_t>(i)]))
             << (i * 8);
    }
    m.field = static_cast<std::int64_t>(f);
    m.body = std::string(wire.substr(9));
    return m;
}

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
    if (s.empty() || s.size() > 20) return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10) return false;
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

} // namespace

bool strip_write_tag(std::vector<std::string>& argv, WriteTag* tag) {
    if (argv.size() < 4 || argv[0] != "WSEQ") return false;
    WriteTag t;
    if (!parse_u64(argv[1], &t.client) || !parse_u64(argv[2], &t.seq)) {
        return false;
    }
    argv.erase(argv.begin(), argv.begin() + 3);
    *tag = t;
    return true;
}

std::vector<std::string> make_replicated_tagged(
    const WriteTag& tag, const std::string& reply,
    const std::vector<std::string>& repl_argv) {
    std::vector<std::string> out;
    out.reserve(repl_argv.size() + 4);
    out.emplace_back("WSEQR");
    out.push_back(std::to_string(tag.client));
    out.push_back(std::to_string(tag.seq));
    out.push_back(reply);
    out.insert(out.end(), repl_argv.begin(), repl_argv.end());
    return out;
}

bool strip_replicated_tag(std::vector<std::string>& argv, WriteTag* tag,
                          std::string* reply) {
    if (argv.size() < 5 || argv[0] != "WSEQR") return false;
    WriteTag t;
    if (!parse_u64(argv[1], &t.client) || !parse_u64(argv[2], &t.seq)) {
        return false;
    }
    *reply = argv[3];
    argv.erase(argv.begin(), argv.begin() + 4);
    *tag = t;
    return true;
}

} // namespace skv::server
