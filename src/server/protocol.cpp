#include "server/protocol.hpp"

namespace skv::server {

std::string NodeMsg::encode() const {
    std::string out;
    out.reserve(9 + body.size());
    out.push_back(static_cast<char>(type));
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>(static_cast<std::uint64_t>(field) >> (i * 8)));
    }
    out += body;
    return out;
}

std::optional<NodeMsg> NodeMsg::decode(std::string_view wire) {
    if (wire.size() < 9) return std::nullopt;
    NodeMsg m;
    m.type = static_cast<Type>(wire[0]);
    switch (m.type) {
        case Type::kInitSync:
        case Type::kSyncNotify:
        case Type::kFullSync:
        case Type::kBacklog:
        case Type::kReplData:
        case Type::kAck:
        case Type::kProbe:
        case Type::kProbeAck:
        case Type::kResyncRequest:
        case Type::kPromote:
        case Type::kDemote:
        case Type::kSync:
        case Type::kSlaveCount:
            break;
        default:
            return std::nullopt;
    }
    std::uint64_t f = 0;
    for (int i = 0; i < 8; ++i) {
        f |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                 wire[1 + static_cast<std::size_t>(i)]))
             << (i * 8);
    }
    m.field = static_cast<std::int64_t>(f);
    m.body = std::string(wire.substr(9));
    return m;
}

} // namespace skv::server
