#include "server/reliable.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace skv::server {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
}

std::uint64_t get_u64(std::string_view in, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
             << (i * 8);
    }
    return v;
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
             << (i * 8);
    }
    return v;
}

constexpr char kData = 'D';
constexpr char kAck = 'A';
constexpr std::size_t kDataHeader = 1 + 8 + 4;
constexpr std::size_t kAckFrame = 1 + 8;

} // namespace

std::uint32_t ReliableChannel::crc32(std::string_view bytes) {
    // FNV-1a: not a real CRC but a deterministic, dependency-free integrity
    // check good enough to reject ring frames whose head fell into a loss
    // hole (the failure mode this guards against is truncation, not an
    // adversary).
    std::uint32_t h = 0x811c9dc5u;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x01000193u;
    }
    return h;
}

std::shared_ptr<ReliableChannel> ReliableChannel::wrap(sim::Simulation& sim,
                                                       net::ChannelPtr inner,
                                                       ReliableParams params,
                                                       obs::Registry* reg) {
    SKV_CHECK(inner);
    auto ch = std::shared_ptr<ReliableChannel>(
        new ReliableChannel(sim, std::move(inner), params));
    ch->rto_ = params.initial_rto;
    if (reg != nullptr) {
        ch->c_retransmits_ = reg->counter_handle("rel.retransmits");
        ch->c_dups_ = reg->counter_handle("rel.dups_suppressed");
        ch->c_crc_drops_ = reg->counter_handle("rel.crc_drops");
        ch->c_acks_ = reg->counter_handle("rel.acks_sent");
    }
    std::weak_ptr<ReliableChannel> weak = ch;
    ch->inner_->set_on_message([weak](std::string payload) {
        if (auto self = weak.lock()) self->on_inner_message(std::move(payload));
    });
    return ch;
}

void ReliableChannel::send(std::string payload) {
    if (closed_ || broken_) return;
    std::string wire;
    wire.reserve(kDataHeader + payload.size());
    wire.push_back(kData);
    put_u64(wire, next_seq_);
    put_u32(wire, crc32(payload));
    wire.append(payload);
    unacked_.push_back(Unacked{next_seq_, wire, 0});
    ++next_seq_;
    inner_->send(std::move(wire));
    arm_rto();
}

void ReliableChannel::arm_rto() {
    if (rto_armed_ || unacked_.empty() || closed_ || broken_) return;
    rto_armed_ = true;
    const std::uint64_t epoch = ++rto_epoch_;
    auto self = shared_from_this();
    sim_.after(rto_, [self, epoch]() { self->on_rto(epoch); });
}

void ReliableChannel::on_rto(std::uint64_t epoch) {
    if (epoch != rto_epoch_ || closed_ || broken_) return;
    rto_armed_ = false;
    if (unacked_.empty()) return;
    if (inner_->backlog_bytes() > 0) {
        // The transport is still draining (e.g. a multi-megabyte snapshot
        // squeezing through the ring window): the message may not even have
        // hit the wire yet. Re-arm without burning a retry or duplicating
        // bytes into an already-congested pipe.
        arm_rto();
        return;
    }
    Unacked& oldest = unacked_.front();
    if (oldest.retries >= params_.max_retries) {
        broken_ = true;
        if (on_broken_) on_broken_();
        return;
    }
    ++oldest.retries;
    ++retransmits_;
    c_retransmits_.incr();
    inner_->send(oldest.wire);
    rto_ = std::min(
        sim::Duration(static_cast<std::int64_t>(
            static_cast<double>(rto_.ns()) * params_.backoff)),
        params_.max_rto);
    arm_rto();
}

void ReliableChannel::on_inner_message(std::string payload) {
    if (closed_) return;
    if (payload.size() >= kAckFrame && payload[0] == kAck) {
        const std::uint64_t cum = get_u64(payload, 1);
        bool progressed = false;
        while (!unacked_.empty() && unacked_.front().seq <= cum) {
            unacked_.pop_front();
            progressed = true;
        }
        if (progressed) {
            // Fresh progress: restart backoff and re-time from now.
            rto_ = params_.initial_rto;
            ++rto_epoch_; // cancel the outstanding timer logically
            rto_armed_ = false;
            arm_rto();
        }
        return;
    }
    if (payload.size() >= kDataHeader && payload[0] == kData) {
        const std::uint64_t seq = get_u64(payload, 1);
        const std::uint32_t crc = get_u32(payload, 9);
        std::string body = payload.substr(kDataHeader);
        if (crc32(body) != crc) {
            // Truncated/garbled reassembly under injected loss: drop and let
            // the ack (not covering this seq) trigger a retransmission.
            ++crc_drops_;
            c_crc_drops_.incr();
            schedule_ack(/*immediate=*/true);
            return;
        }
        handle_data(seq, std::move(body));
        return;
    }
    // Not a reliable frame at all — garbage from a loss hole.
    ++crc_drops_;
    c_crc_drops_.incr();
}

void ReliableChannel::handle_data(std::uint64_t seq, std::string payload) {
    if (seq <= delivered_seq_) {
        // Retransmission of something we already have: the sender missed an
        // ack. Re-ack immediately so it stops.
        ++dups_suppressed_;
        c_dups_.incr();
        schedule_ack(/*immediate=*/true);
        return;
    }
    if (seq == delivered_seq_ + 1) {
        delivered_seq_ = seq;
        deliver(std::move(payload));
        // Drain consecutive buffered successors.
        auto it = reorder_.begin();
        while (it != reorder_.end() && it->first == delivered_seq_ + 1) {
            delivered_seq_ = it->first;
            deliver(std::move(it->second));
            it = reorder_.erase(it);
        }
        schedule_ack(/*immediate=*/false);
        return;
    }
    // A hole precedes this message: hold it and tell the sender where we
    // are so the missing one is retransmitted promptly.
    if (reorder_.size() < params_.reorder_window) {
        reorder_.emplace(seq, std::move(payload));
    } else {
        ++dups_suppressed_;
        c_dups_.incr(); // dropped; retransmission will restore order
    }
    schedule_ack(/*immediate=*/true);
}

void ReliableChannel::deliver(std::string payload) {
    if (on_message_) {
        on_message_(std::move(payload));
    } else {
        pending_.push_back(std::move(payload));
    }
}

void ReliableChannel::send_ack_now() {
    if (closed_ || !inner_->open()) return;
    std::string wire;
    wire.reserve(kAckFrame);
    wire.push_back(kAck);
    put_u64(wire, delivered_seq_);
    ++acks_sent_;
    c_acks_.incr();
    inner_->send(std::move(wire));
}

void ReliableChannel::schedule_ack(bool immediate) {
    if (immediate) {
        ++ack_epoch_; // cancels a pending delayed ack
        ack_scheduled_ = false;
        send_ack_now();
        return;
    }
    if (ack_scheduled_) return;
    ack_scheduled_ = true;
    const std::uint64_t epoch = ++ack_epoch_;
    auto self = shared_from_this();
    sim_.after(params_.ack_delay, [self, epoch]() {
        if (epoch != self->ack_epoch_ || !self->ack_scheduled_) return;
        self->ack_scheduled_ = false;
        self->send_ack_now();
    });
}

void ReliableChannel::set_on_message(MessageHandler handler) {
    on_message_ = std::move(handler);
    while (on_message_ && !pending_.empty()) {
        auto payload = std::move(pending_.front());
        pending_.pop_front();
        on_message_(std::move(payload));
    }
}

void ReliableChannel::close() {
    if (closed_) return;
    closed_ = true;
    ++rto_epoch_;
    ++ack_epoch_;
    unacked_.clear();
    reorder_.clear();
    pending_.clear();
    if (on_message_ || on_broken_) {
        sim_.trace().note(sim::TraceEvent::kHandlerClear, sim_.now(),
                          inner_->peer());
        // close() is frequently called from inside on_broken_ (the owner's
        // link-broken handler tears the link down) or from on_message_, so
        // neither function object may be destroyed synchronously. Defer one
        // sim event; closed_ already gates every entry point.
        auto self = shared_from_this();
        sim_.after(sim::Duration::zero(), [self]() {
            self->on_message_ = nullptr;
            self->on_broken_ = nullptr;
        });
    }
    inner_->close();
}

} // namespace skv::server
