#include "server/kv_server.hpp"

#include "kv/rdb.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/check.hpp"

namespace skv::server {

const char* to_string(Transport t) {
    switch (t) {
        case Transport::kTcp: return "tcp";
        case Transport::kRdma: return "rdma";
    }
    return "?";
}

const char* to_string(Role r) {
    switch (r) {
        case Role::kStandalone: return "standalone";
        case Role::kMaster: return "master";
        case Role::kSlave: return "slave";
    }
    return "?";
}

const char* to_string(ReplicationMode m) {
    switch (m) {
        case ReplicationMode::kFanout: return "fanout";
        case ReplicationMode::kChain: return "chain";
        case ReplicationMode::kQuorum: return "quorum";
    }
    return "?";
}

KvServer::KvServer(sim::Simulation& sim, const cpu::CostModel& costs,
                   Transports nets, net::NodeRef self, ServerConfig cfg)
    : sim_(sim), costs_(costs), nets_(nets), self_(self), cfg_(std::move(cfg)),
      rng_(sim.fork_rng()),
      db_([&sim]() { return sim.now().ns() / 1'000'000; }),
      backlog_(cfg_.backlog_bytes),
      commands_table_(kv::CommandTable::instance()), stats_(cfg_.name),
      c_reads_(stats_.counter_handle("reads")),
      c_writes_(stats_.counter_handle("writes")),
      c_repl_offload_(stats_.counter_handle("repl_offload_requests")),
      c_repl_sends_(stats_.counter_handle("repl_sends")),
      c_repl_applied_(stats_.counter_handle("repl_applied")),
      t_cmd_all_(stats_.timer_handle("cmd.service")),
      t_cmd_write_(stats_.timer_handle("cmd.service.write")),
      t_cmd_read_(stats_.timer_handle("cmd.service.read")) {
    SKV_CHECK(self_.valid());
    SKV_CHECK(nets_.fabric != nullptr);
    SKV_DCHECK(cfg_.transport == Transport::kTcp ? nets_.tcp != nullptr
                                                 : nets_.cm != nullptr);
}

void KvServer::start() {
    SKV_CHECK(!started_);
    started_ = true;
    listen_all();
    sim_.after(cfg_.cron_interval, [this]() { cron(); });
}

void KvServer::listen_all() {
    auto client_accept = [this](net::ChannelPtr ch) {
        if (ch) on_client_accept(std::move(ch));
    };
    auto node_accept = [this](net::ChannelPtr ch) {
        if (ch) on_node_accept(std::move(ch));
    };
    if (cfg_.transport == Transport::kTcp) {
        nets_.tcp->listen(self_, cfg_.port, client_accept);
        nets_.tcp->listen(self_, static_cast<std::uint16_t>(cfg_.port + 1),
                          node_accept);
    } else {
        nets_.cm->listen(self_, cfg_.port, client_accept);
        nets_.cm->listen(self_, static_cast<std::uint16_t>(cfg_.port + 1),
                         node_accept);
    }
}

void KvServer::set_tracer(obs::Tracer* tracer, const std::string& track_name) {
    tracer_ = tracer;
    obs_track_ = tracer != nullptr ? tracer->track(track_name) : UINT32_MAX;
}

// --- connections -------------------------------------------------------------

void KvServer::on_client_accept(net::ChannelPtr ch) {
    auto conn = std::make_shared<ClientConn>();
    conn->channel = std::move(ch);
    clients_.push_back(conn);
    stats_.incr("clients_accepted");
    // Weak capture: the handler lives inside conn->channel, which conn
    // owns — an owning capture would cycle and the connection could never
    // be reclaimed.
    std::weak_ptr<ClientConn> wconn = conn;
    conn->channel->set_on_message([this, wconn](std::string payload) {
        auto conn = wconn.lock();
        if (!conn || crashed_) return;
        on_client_data(conn, std::move(payload));
    });
}

void KvServer::install_node_handler(const ClientPtr& conn) {
    std::weak_ptr<ClientConn> wconn = conn;
    conn->channel->set_on_message([this, wconn](std::string payload) {
        auto conn = wconn.lock();
        if (!conn || crashed_) return;
        const auto msg = NodeMsg::decode(payload);
        if (!msg.has_value()) {
            stats_.incr("node_msgs_malformed");
            return;
        }
        handle_node_msg(conn, *msg);
    });
}

void KvServer::release_conn(const net::Channel* raw) {
    std::erase_if(clients_, [&](const ClientPtr& c) {
        if (c->channel.get() != raw) return false;
        c->channel->close();
        return true;
    });
}

net::ChannelPtr KvServer::wrap_node_link(net::ChannelPtr ch) {
    if (!cfg_.reliable_node_links || !ch) return ch;
    auto rel = ReliableChannel::wrap(sim_, std::move(ch), cfg_.reliable, &stats_);
    const net::Channel* raw = rel.get();
    rel->set_on_broken([this, raw]() { on_node_link_broken(raw); });
    return rel;
}

void KvServer::on_node_link_broken(const net::Channel* raw) {
    stats_.incr("node_links_broken");
    if (crashed_) return;
    // A master's link to a baseline slave: drop the registration entirely
    // (close tears the object graph down); the slave's next kSync
    // re-registration recreates the entry.
    bool removed_slave = false;
    for (auto it = slaves_.begin(); it != slaves_.end();) {
        if (it->channel.get() == raw) {
            if (it->channel) it->channel->close();
            it = slaves_.erase(it);
            removed_slave = true;
        } else {
            ++it;
        }
    }
    if (removed_slave && !cfg_.offload_replication) {
        available_slaves_ = 0;
        for (const auto& t : slaves_) {
            if (t.valid) ++available_slaves_;
        }
    }
    if (removed_slave) flush_parked();
    if (master_link_ && master_link_.get() == raw) {
        master_link_->close();
        master_link_.reset();
    }
    // SKV links to the local Nic-KV: dial again (the attempt counter makes
    // a superseded reconnect harmless).
    if (nic_link_ && nic_link_.get() == raw) {
        nic_link_->close();
        nic_link_.reset();
        nic_attached_ = false;
        release_conn(raw);
        if (cfg_.offload_replication && skv_nic_ep_ != net::kInvalidEndpoint) {
            attach_nic(skv_nic_ep_, skv_nic_port_);
        }
        return;
    }
    if (nic_registration_ && nic_registration_.get() == raw) {
        nic_registration_->close();
        nic_registration_.reset();
        release_conn(raw);
        if (role_ == Role::kSlave && skv_nic_ep_ != net::kInvalidEndpoint) {
            slaveof_skv(skv_nic_ep_, skv_nic_port_);
        }
        return;
    }
    if (chain_succ_link_ && chain_succ_link_.get() == raw) {
        chain_succ_link_->close();
        chain_succ_link_.reset();
        release_conn(raw);
        // No redial on our own: the NIC's failure detector re-splices the
        // chain and sends a fresh assignment (possibly naming someone else).
        stats_.incr("chain_links_broken");
        return;
    }
    release_conn(raw);
}

void KvServer::on_node_accept(net::ChannelPtr ch) {
    auto conn = std::make_shared<ClientConn>();
    conn->channel = wrap_node_link(std::move(ch));
    conn->node_link = true;
    clients_.push_back(conn);
    stats_.incr("node_links_accepted");
    install_node_handler(conn);
}

// --- client command path ----------------------------------------------------

void KvServer::on_client_data(const ClientPtr& conn, std::string payload) {
    sim::NodeScope owner(self_.ep);
    conn->parser.feed(payload);
    std::vector<std::string> argv;
    std::string err;
    for (;;) {
        const auto st = conn->parser.next(&argv, &err);
        if (st == kv::resp::Status::kNeedMore) break;
        if (st == kv::resp::Status::kError) {
            conn->channel->send(kv::resp::error("ERR " + err));
            conn->channel->close();
            stats_.incr("protocol_errors");
            return;
        }
        run_command(conn, std::move(argv));
        argv.clear();
    }
}

sim::Duration KvServer::command_cost(const std::vector<std::string>& argv,
                                     const kv::CommandSpec* spec) const {
    sim::Duration cost = costs_.event_dispatch + costs_.cmd_parse;
    if (spec != nullptr) {
        cost += spec->is_write() ? costs_.cmd_exec_write : costs_.cmd_exec_read;
    }
    cost += costs_.reply_build;
    std::size_t bytes = 0;
    for (const auto& a : argv) bytes += a.size();
    cost += costs_.copy_cost(bytes);
    return cost;
}

bool KvServer::write_allowed(std::string* err, const char** reason) const {
    if (role_ == Role::kSlave) {
        *err = "READONLY You can't write against a read only replica.";
        *reason = "writes_rejected_readonly";
        return false;
    }
    if (role_ == Role::kMaster && available_slaves_ < cfg_.min_slaves) {
        *err = "NOREPLICAS Not enough good replicas to write.";
        *reason = "writes_rejected_min_slaves";
        return false;
    }
    if (role_ == Role::kMaster && cfg_.max_repl_lag_bytes > 0) {
        // Paper Fig. 9 step 3: a slave whose reported progress is too far
        // behind makes the master return an error to the client.
        for (const auto& s : slaves_) {
            if (!s.valid) continue;
            if (backlog_.master_offset() - s.ack_offset > cfg_.max_repl_lag_bytes) {
                *err = "NOREPLPROGRESS Replication to '" + s.name +
                       "' is lagging too far behind.";
                *reason = "writes_rejected_lag";
                return false;
            }
        }
    }
    return true;
}

void KvServer::run_command(const ClientPtr& conn, std::vector<std::string> argv) {
    if (argv.empty()) return;
    const sim::SimTime t0 = sim_.now();
    const bool traced = tracer_ != nullptr && tracer_->enabled();
    if (traced) {
        // Span stage: the client's issue -> here is the RDMA write + parse
        // leg. No-ops for flows the tracer never saw issued (raw shells).
        tracer_->flow_server_recv(conn->channel->flow_id(), obs_track_);
    }
    // INFO / SLOWLOG / LATENCY are served by the server, not the engine:
    // they report replication, latency and server state the command table
    // cannot see.
    const kv::Sds cmd0(argv[0]);
    if (cmd0.iequals("INFO") || cmd0.iequals("SLOWLOG") ||
        cmd0.iequals("LATENCY")) {
        self_.core->submit(
            costs_.jittered(rng_, command_cost(argv, nullptr)),
            [this, conn, argv = std::move(argv), t0, traced]() {
                ++commands_;
                c_reads_.incr();
                std::string reply;
                const kv::Sds c0(argv[0]);
                if (c0.iequals("INFO")) {
                    reply = kv::resp::bulk(info_sections());
                } else if (c0.iequals("SLOWLOG")) {
                    reply = slowlog_reply(argv);
                } else {
                    reply = latency_reply(argv);
                }
                record_command_latency(argv, /*is_write=*/false, t0);
                if (traced) tracer_->flow_server_done(conn->channel->flow_id());
                conn->channel->send(std::move(reply));
            });
        return;
    }
    // Duplicate-suppression envelope (retrying clients): strip it before
    // command lookup so costs and execution see the real command.
    WriteTag tag{};
    const bool tagged = strip_write_tag(argv, &tag);
    const kv::CommandSpec* spec = commands_table_.lookup(argv[0]);
    const sim::Duration cost = costs_.jittered(rng_, command_cost(argv, spec));
    self_.core->submit(cost, [this, conn, argv = std::move(argv), spec, t0,
                              traced, tagged, tag]() {
        ++commands_;
        std::string reply;
        // Replicas hold dup entries too (for promotion handover and replay
        // suppression in apply_one), but having applied a write says nothing
        // about whether it is commit-gated: an un-promoted replica must not
        // answer a retry from its cache, or an uncommitted write gets acked
        // while e.g. the chain tail still lags it. Fall through to the
        // role check, which bounces the client back to the master.
        if (tagged && role_ != Role::kSlave) {
            const auto it = dup_table_.find(tag.client);
            if (it != dup_table_.end() && it->second.seq == tag.seq) {
                // Already executed: never re-apply. Either replay the
                // cached reply or, if the original is still parked on
                // replica acks, adopt this connection as the waiter.
                it->second.last_used = ++dup_use_tick_;
                stats_.incr("dup_suppressed");
                record_command_latency(argv, /*is_write=*/true, t0);
                if (it->second.ready) {
                    if (traced) tracer_->flow_server_done(conn->channel->flow_id());
                    conn->channel->send(std::string(it->second.reply));
                } else {
                    attach_dup_waiter(tag, conn, traced);
                }
                return;
            }
            if (it != dup_table_.end() && it->second.seq > tag.seq) {
                stats_.incr("dup_stale_seq");
                if (traced) tracer_->flow_server_done(conn->channel->flow_id());
                conn->channel->send(
                    kv::resp::error("DUPSEQ write sequence already superseded"));
                return;
            }
        }
        if (spec != nullptr && !spec->is_write() && role_ == Role::kSlave &&
            !cfg_.serve_stale_reads) {
            // Chain mode: the tail's copy is the chain's committed prefix
            // (every acked write passed through it), so the tail may answer
            // reads while its probe lease is fresh and it has caught up to
            // its assignment-time floor. Everyone else refuses.
            if (chain_read_ok()) {
                stats_.incr("chain_tail_reads");
            } else {
                stats_.incr("reads_rejected_stale");
                record_command_latency(argv, /*is_write=*/false, t0);
                if (traced) tracer_->flow_server_done(conn->channel->flow_id());
                conn->channel->send(kv::resp::error(
                    "READONLY Reads from replicas are disabled."));
                return;
            }
        }
        if (spec != nullptr && spec->is_write()) {
            std::string err;
            const char* reason = "writes_rejected_other";
            if (!write_allowed(&err, &reason)) {
                stats_.incr("writes_rejected");
                stats_.incr(reason);
                record_command_latency(argv, /*is_write=*/true, t0);
                if (traced) tracer_->flow_server_done(conn->channel->flow_id());
                conn->channel->send(kv::resp::error(err));
                return;
            }
        }
        const kv::ExecResult res =
            commands_table_.execute(db_, rng_, argv, reply);
        if (!res.repl_argv.empty() && role_ != Role::kSlave) {
            if (tagged) {
                propagate(make_replicated_tagged(tag, reply, res.repl_argv));
            } else {
                propagate(res.repl_argv);
            }
        }
        if (res.is_write) {
            c_writes_.incr();
        } else {
            c_reads_.incr();
        }
        record_command_latency(argv, res.is_write, t0);
        deliver_or_park(conn, std::move(reply), backlog_.master_offset(),
                        res.is_write, tagged && res.is_write, tag, traced);
    });
}

// --- commit gating / duplicate suppression -----------------------------------

int KvServer::commit_need() const {
    if (cfg_.wait_for_slaves <= 0 || role_ != Role::kMaster) return 0;
    int valid = 0;
    for (const auto& s : slaves_) {
        if (s.valid) ++valid;
    }
    if (cfg_.replication_mode == ReplicationMode::kChain) {
        // Chain commit = the tail applied it, which in an in-order chain
        // means every live member did: require all valid links, so a tail
        // read can never miss an acked write. The detector's member count
        // is a floor on the requirement: a healed member the NIC already
        // splices back in (it may become the leased tail) can be missing
        // from slaves_ until it re-registers, and committing without its
        // ack in that window would let the new tail serve stale reads.
        if (cfg_.offload_replication) return std::max(valid, available_slaves_);
        return valid;
    }
    return std::min(cfg_.wait_for_slaves, valid);
}

int KvServer::acked_replicas(std::int64_t offset) const {
    int n = 0;
    for (const auto& s : slaves_) {
        if (s.valid && s.ack_offset >= offset) ++n;
    }
    return n;
}

bool KvServer::commit_satisfied(std::int64_t offset) const {
    if (cfg_.replication_mode == ReplicationMode::kQuorum &&
        role_ == Role::kMaster && cfg_.wait_for_slaves > 0) {
        // Quorum commits are released by the NIC's ack aggregation, not by
        // per-slave ack counting. A master with no registered replicas
        // (bootstrap, or a promoted stand-in serving solo) is its own
        // majority-of-one, matching fan-out's need==0 behavior.
        if (slaves_.empty() && available_slaves_ <= 0) return true;
        return quorum_commit_offset_ >= offset;
    }
    const int need = commit_need();
    return need == 0 || acked_replicas(offset) >= need;
}

void KvServer::dup_record(const WriteTag& tag, std::string reply, bool ready,
                          std::int64_t offset) {
    dup_table_[tag.client] =
        DupState{tag.seq, std::move(reply), ready, offset, ++dup_use_tick_};
    // Only the master (or a promoted stand-in) chooses victims; replicas
    // mirror the choice via the replicated WSEQEVICT below. Retry hits
    // touch last_used on the master alone, so a replica running its own
    // LRU scan could pick a *different* victim and drift out of lockstep
    // — a promoted stand-in would then re-execute a write the old master
    // still suppressed. A replica's table exceeds the cap only by the
    // evictions still in flight in the stream.
    while (role_ != Role::kSlave && dup_table_.size() > cfg_.dup_table_max) {
        // Evict the least-recently-active client: quiescent retriers go
        // first, live ones keep their entries. Deterministic linear scan —
        // eviction is rare and the table is capped.
        auto victim = dup_table_.begin();
        for (auto it = dup_table_.begin(); it != dup_table_.end(); ++it) {
            if (it->second.last_used < victim->second.last_used) victim = it;
        }
        const std::uint64_t evicted = victim->first;
        dup_table_.erase(victim);
        stats_.incr("dup_evictions");
        propagate({"WSEQEVICT", std::to_string(evicted)});
    }
}

void KvServer::deliver_or_park(const ClientPtr& conn, std::string reply,
                               std::int64_t offset, bool is_write, bool tagged,
                               WriteTag tag, bool traced) {
    if (commit_satisfied(offset)) {
        if (tagged) dup_record(tag, reply, /*ready=*/true, offset);
        if (traced && tracer_ != nullptr) {
            tracer_->flow_server_done(conn->channel->flow_id());
        }
        conn->channel->send(std::move(reply));
        return;
    }
    if (tagged) dup_record(tag, reply, /*ready=*/false, offset);
    const std::uint64_t id = next_parked_id_++;
    parked_.emplace(id, Parked{conn, std::move(reply), offset, is_write, tagged,
                               tag, traced});
    stats_.incr(is_write ? "writes_parked" : "reads_parked");
    sim_.after(cfg_.wait_timeout, [this, id]() { on_wait_timeout(id); });
    if (!is_write && cfg_.replication_mode == ReplicationMode::kQuorum) {
        maybe_read_repair(offset);
    }
}

void KvServer::flush_parked() {
    if (parked_.empty()) return;
    for (auto it = parked_.begin(); it != parked_.end();) {
        Parked& p = it->second;
        if (!commit_satisfied(p.offset)) {
            ++it;
            continue;
        }
        if (p.tagged) dup_record(p.tag, p.reply, /*ready=*/true, p.offset);
        if (const auto conn = p.conn.lock(); conn && conn->channel) {
            if (p.traced && tracer_ != nullptr) {
                tracer_->flow_server_done(conn->channel->flow_id());
            }
            conn->channel->send(std::move(p.reply));
        }
        it = parked_.erase(it);
    }
}

void KvServer::on_wait_timeout(std::uint64_t id) {
    if (crashed_) return;
    const auto it = parked_.find(id);
    if (it == parked_.end()) return; // already flushed
    Parked p = std::move(it->second);
    parked_.erase(it);
    stats_.incr("wait_timeouts");
    // The command DID execute locally; only replication progress is
    // unknown. The client must treat this as maybe-applied and retry with
    // the same token (the dup entry stays, still not ready).
    if (const auto conn = p.conn.lock(); conn && conn->channel) {
        if (p.traced && tracer_ != nullptr) {
            tracer_->flow_server_done(conn->channel->flow_id());
        }
        conn->channel->send(kv::resp::error(
            "WAITTIMEOUT write not acknowledged by enough replicas"));
    }
}

void KvServer::attach_dup_waiter(const WriteTag& tag, const ClientPtr& conn,
                                 bool traced) {
    for (auto& [id, p] : parked_) {
        if (p.tagged && p.tag.client == tag.client && p.tag.seq == tag.seq) {
            p.conn = conn;
            p.traced = traced;
            return;
        }
    }
    // The original park timed out; re-park this retry at the recorded
    // commit offset (deliver_or_park re-checks ack progress first).
    const auto it = dup_table_.find(tag.client);
    SKV_DCHECK(it != dup_table_.end());
    deliver_or_park(conn, std::string(it->second.reply), it->second.offset,
                    /*is_write=*/true, /*tagged=*/true, tag, traced);
}

void KvServer::record_command_latency(const std::vector<std::string>& argv,
                                      bool is_write, sim::SimTime t0) {
    const sim::Duration dur = sim_.now() - t0;
    t_cmd_all_.record(dur);
    (is_write ? t_cmd_write_ : t_cmd_read_).record(dur);
    if (cfg_.slowlog_threshold.ns() >= 0 &&
        dur.ns() >= cfg_.slowlog_threshold.ns()) {
        SlowlogEntry e;
        e.id = next_slowlog_id_++;
        e.when_ns = sim_.now().ns();
        e.dur_ns = dur.ns();
        // Like Redis, cap the retained argv so a huge MSET cannot bloat the
        // ring; the command name plus first args identify the culprit.
        const std::size_t keep = std::min<std::size_t>(argv.size(), 8);
        e.argv.assign(argv.begin(),
                      argv.begin() + static_cast<std::ptrdiff_t>(keep));
        slowlog_.push_back(std::move(e));
        while (slowlog_.size() > cfg_.slowlog_max_len) slowlog_.pop_front();
    }
    LatencyEvent& ev =
        latency_events_[is_write ? "command-write" : "command-read"];
    ev.last_ns = sim_.now().ns();
    ev.last_dur_ns = dur.ns();
    ev.max_dur_ns = std::max(ev.max_dur_ns, dur.ns());
    ev.history.emplace_back(sim_.now().ns(), dur.ns());
    while (ev.history.size() > cfg_.latency_history_len) ev.history.pop_front();
}

std::string KvServer::slowlog_reply(const std::vector<std::string>& argv) {
    const std::string_view usage =
        "ERR wrong number of arguments for 'slowlog' command";
    if (argv.size() < 2) return kv::resp::error(usage);
    const kv::Sds sub(argv[1]);
    if (sub.iequals("RESET")) {
        slowlog_.clear();
        return kv::resp::simple("OK");
    }
    if (sub.iequals("LEN")) {
        return kv::resp::integer(static_cast<long long>(slowlog_.size()));
    }
    if (sub.iequals("GET")) {
        long long want = 10;
        if (argv.size() >= 3) {
            const auto n = kv::string2ll(argv[2]);
            if (!n.has_value()) {
                return kv::resp::error("ERR value is not an integer or out of range");
            }
            want = *n < 0 ? static_cast<long long>(slowlog_.size()) : *n;
        }
        const auto count = std::min<std::size_t>(
            slowlog_.size(), static_cast<std::size_t>(std::max<long long>(want, 0)));
        std::string out = kv::resp::array_header(count);
        // Newest first, Redis-style. Entry: id, sim-time (s), duration (us),
        // argv.
        auto it = slowlog_.rbegin();
        for (std::size_t i = 0; i < count; ++i, ++it) {
            out += kv::resp::array_header(4);
            out += kv::resp::integer(static_cast<long long>(it->id));
            out += kv::resp::integer(it->when_ns / 1'000'000'000);
            out += kv::resp::integer(it->dur_ns / 1'000);
            out += kv::resp::array_header(it->argv.size());
            for (const auto& a : it->argv) out += kv::resp::bulk(a);
        }
        return out;
    }
    return kv::resp::error("ERR unknown SLOWLOG subcommand '" + argv[1] + "'");
}

std::string KvServer::latency_reply(const std::vector<std::string>& argv) {
    if (argv.size() < 2 || kv::Sds(argv[1]).iequals("LATEST")) {
        // Array of [event, sim-time (s), last duration (us), max duration
        // (us)] — Redis reports milliseconds; this simulation's interesting
        // tail lives in microseconds.
        std::string out = kv::resp::array_header(latency_events_.size());
        for (const auto& [name, ev] : latency_events_) {
            out += kv::resp::array_header(4);
            out += kv::resp::bulk(name);
            out += kv::resp::integer(ev.last_ns / 1'000'000'000);
            out += kv::resp::integer(ev.last_dur_ns / 1'000);
            out += kv::resp::integer(ev.max_dur_ns / 1'000);
        }
        return out;
    }
    const kv::Sds sub(argv[1]);
    if (sub.iequals("RESET")) {
        const auto n = static_cast<long long>(latency_events_.size());
        latency_events_.clear();
        return kv::resp::integer(n);
    }
    if (sub.iequals("HISTORY")) {
        if (argv.size() < 3) return kv::resp::array_header(0);
        const auto it = latency_events_.find(argv[2]);
        if (it == latency_events_.end()) return kv::resp::array_header(0);
        std::string out = kv::resp::array_header(it->second.history.size());
        for (const auto& [when_ns, dur_ns] : it->second.history) {
            out += kv::resp::array_header(2);
            out += kv::resp::integer(when_ns / 1'000'000'000);
            out += kv::resp::integer(dur_ns / 1'000);
        }
        return out;
    }
    return kv::resp::error("ERR unknown LATENCY subcommand '" + argv[1] + "'");
}

// --- replication: master side ---------------------------------------------------

void KvServer::propagate(const std::vector<std::string>& repl_argv) {
    const std::string bytes = kv::resp::command(repl_argv);
    const std::int64_t start = backlog_.master_offset();
    backlog_.append(bytes);

    const bool traced = tracer_ != nullptr && tracer_->enabled();
    if (cfg_.offload_replication) {
        if (!nic_attached_ || !nic_link_ || !nic_link_->open()) return;
        // SKV: one replication request to the SmartNIC, regardless of the
        // number of slaves — the per-write saving the paper measures.
        self_.core->consume(costs_.jittered(rng_, costs_.offload_request_build));
        nic_link_->send(NodeMsg{NodeMsg::Type::kReplData, start, bytes}.encode());
        c_repl_offload_.incr();
        if (traced) {
            tracer_->repl_propagate(start,
                                    start + static_cast<std::int64_t>(bytes.size()),
                                    obs_track_);
        }
        return;
    }
    // Baseline: feed every slave's buffer and post one WR each, one by one,
    // before the client reply goes out.
    bool sent_any = false;
    for (auto& s : slaves_) {
        if (!s.valid || !s.channel || !s.channel->open()) continue;
        sim::Duration feed = costs_.jittered(rng_, costs_.repl_feed_slave) +
                             costs_.copy_cost(bytes.size());
        if (rng_.next_bool(costs_.repl_feed_stall_prob)) {
            feed += costs_.repl_feed_stall;
        }
        self_.core->consume(feed);
        s.channel->send(NodeMsg{NodeMsg::Type::kReplData, start, bytes}.encode());
        c_repl_sends_.incr();
        sent_any = true;
    }
    if (traced && sent_any) {
        tracer_->repl_propagate(start,
                                start + static_cast<std::int64_t>(bytes.size()),
                                obs_track_);
    }
}

void KvServer::serve_initial_sync(const std::string& slave_name,
                                  std::int64_t slave_offset,
                                  net::ChannelPtr direct) {
    // Register (or refresh) the slave link.
    auto it = std::find_if(slaves_.begin(), slaves_.end(),
                           [&](const SlaveLink& s) { return s.name == slave_name; });
    if (it == slaves_.end()) {
        slaves_.push_back(SlaveLink{slave_name, direct, slave_offset, true});
    } else {
        // Re-sync over a fresh channel supersedes the old link: close it and
        // drop its connection record, or the dead channel (which carries no
        // traffic, so the reliable layer never declares it broken) would be
        // retained until process exit.
        if (it->channel && it->channel != direct) {
            const net::Channel* old = it->channel.get();
            it->channel->close();
            release_conn(old);
        }
        it->channel = direct;
        it->ack_offset = slave_offset;
        it->valid = true;
    }
    if (!cfg_.offload_replication) {
        available_slaves_ = static_cast<int>(slaves_.size());
    }
    role_ = Role::kMaster;

    // Decide between a partial resync from the backlog and a full snapshot.
    if (slave_offset == backlog_.master_offset()) {
        // Already byte-for-byte in sync: an empty backlog range doubles as
        // the greeting that tells the slave which channel its master is on.
        direct->send(
            NodeMsg{NodeMsg::Type::kBacklog, slave_offset, ""}.encode());
        stats_.incr("sync_noop");
        return;
    }
    if (backlog_.can_serve(slave_offset)) {
        const std::string range = backlog_.read_from(slave_offset);
        self_.core->consume(costs_.copy_cost(range.size()));
        direct->send(
            NodeMsg{NodeMsg::Type::kBacklog, slave_offset, range}.encode());
        stats_.incr("sync_partial");
        return;
    }
    // Full synchronization: persist everything and ship the RDB file.
    const std::string rdb = kv::rdb::save(db_);
    // Snapshot cost: copy-on-write fork plus serialization.
    self_.core->consume(sim::microseconds(400) + costs_.copy_cost(2 * rdb.size()));
    direct->send(
        NodeMsg{NodeMsg::Type::kFullSync, backlog_.master_offset(), rdb}.encode());
    stats_.incr("sync_full");
}

void KvServer::connect_and_sync_slave(const std::string& slave_name,
                                      std::int64_t offset) {
    // SKV master, paper Fig. 8 step 3: establish a direct RDMA connection
    // to the slave and serve the initial synchronization over it. No retry
    // timer here: a lost handshake leaves the slave unsynced, it re-registers
    // after probe_silence_timeout and the NIC notifies us again.
    auto connect_cb = [this, slave_name, offset](net::ChannelPtr ch) {
        if (!ch || crashed_) return;
        ch = wrap_node_link(std::move(ch));
        auto conn = std::make_shared<ClientConn>();
        conn->channel = ch;
        conn->node_link = true;
        clients_.push_back(conn);
        install_node_handler(conn);
        serve_initial_sync(slave_name, offset, std::move(ch));
    };
    // Slave node ports follow the same convention: cfg_.port + 1. The
    // slave's endpoint is carried in the notify body as "<name>@<ep>".
    const auto at = slave_name.find('@');
    SKV_CHECK(at != std::string::npos);
    const auto ep = static_cast<net::EndpointId>(
        std::stoul(slave_name.substr(at + 1)));
    if (cfg_.transport == Transport::kTcp) {
        nets_.tcp->connect(self_, ep, static_cast<std::uint16_t>(cfg_.port + 1),
                           connect_cb);
    } else {
        nets_.cm->connect(self_, ep, static_cast<std::uint16_t>(cfg_.port + 1),
                          connect_cb);
    }
}

void KvServer::handle_node_msg(const ClientPtr& conn, const NodeMsg& msg) {
    sim::NodeScope owner(self_.ep);
    switch (msg.type) {
        case NodeMsg::Type::kSync: {
            // Baseline: a slave registered over its own channel; serve the
            // initial sync on that same channel.
            self_.core->consume(costs_.event_dispatch);
            serve_initial_sync(msg.body, msg.field, conn->channel);
            break;
        }
        case NodeMsg::Type::kSyncNotify: {
            // SKV: Nic-KV tells the master a slave wants to synchronize.
            self_.core->consume(costs_.event_dispatch);
            connect_and_sync_slave(msg.body, msg.field);
            break;
        }
        case NodeMsg::Type::kResyncRequest: {
            // SKV: a recovered slave is behind; serve it the backlog range
            // over the existing direct channel.
            auto it = std::find_if(
                slaves_.begin(), slaves_.end(),
                [&](const SlaveLink& s) { return s.name == msg.body; });
            if (it == slaves_.end()) break;
            if (backlog_.can_serve(msg.field)) {
                const std::string range = backlog_.read_from(msg.field);
                self_.core->consume(costs_.copy_cost(range.size()));
                it->channel->send(
                    NodeMsg{NodeMsg::Type::kBacklog, msg.field, range}.encode());
                stats_.incr("sync_partial");
            } else {
                const std::string rdb = kv::rdb::save(db_);
                self_.core->consume(sim::microseconds(400) +
                                    costs_.copy_cost(2 * rdb.size()));
                it->channel->send(NodeMsg{NodeMsg::Type::kFullSync,
                                          backlog_.master_offset(), rdb}
                                      .encode());
                stats_.incr("sync_full");
            }
            break;
        }
        case NodeMsg::Type::kAck: {
            auto it = std::find_if(slaves_.begin(), slaves_.end(),
                                   [&](const SlaveLink& s) {
                                       return s.channel == conn->channel;
                                   });
            if (it != slaves_.end()) {
                it->ack_offset = std::max(it->ack_offset, msg.field);
                if (tracer_ != nullptr && tracer_->enabled()) {
                    tracer_->repl_ack(msg.field);
                }
                flush_parked();
            }
            break;
        }
        case NodeMsg::Type::kSlaveCount: {
            available_slaves_ = static_cast<int>(msg.field);
            // Mark named slaves invalid so lag checks skip them.
            for (auto& s : slaves_) {
                s.valid = msg.body.find(s.name) == std::string::npos;
            }
            stats_.incr("fd_updates");
            // The commit quorum shrinks with the valid set; parked replies
            // may be releasable (or permanently below need) now.
            flush_parked();
            break;
        }
        case NodeMsg::Type::kReplData: {
            // Slave: a chunk of the replication stream.
            if (tracer_ != nullptr && tracer_->enabled()) {
                tracer_->repl_slave_apply(msg.field, obs_track_);
            }
            apply_repl_stream(msg.field, msg.body);
            break;
        }
        case NodeMsg::Type::kChainSet: {
            handle_chain_set(msg);
            break;
        }
        case NodeMsg::Type::kChainData: {
            // Chain member: relay downstream first (so the hop overlaps our
            // own apply), then apply locally.
            if (role_ == Role::kSlave &&
                cfg_.replication_mode == ReplicationMode::kChain) {
                stats_.incr("chain_frames");
                chain_forward_frame(msg.field, msg.body);
                if (tracer_ != nullptr && tracer_->enabled()) {
                    tracer_->repl_slave_apply(msg.field, obs_track_);
                }
                apply_repl_stream(msg.field, msg.body);
            } else {
                stats_.incr("node_msgs_unexpected");
            }
            break;
        }
        case NodeMsg::Type::kQuorumCommit: {
            // Quorum master: the NIC released a new majority watermark.
            if (role_ != Role::kSlave &&
                cfg_.replication_mode == ReplicationMode::kQuorum) {
                quorum_commit_offset_ =
                    std::max(quorum_commit_offset_, msg.field);
                stats_.incr("quorum_commit_updates");
                flush_parked();
            } else {
                stats_.incr("node_msgs_unexpected");
            }
            break;
        }
        case NodeMsg::Type::kBacklog: {
            // The sender of sync data is our master: progress reports go
            // back on this channel (baseline: the SYNC channel; SKV: the
            // direct channel the master dialed in Fig. 8 step 3).
            if (role_ == Role::kSlave) master_link_ = conn->channel;
            apply_repl_stream(msg.field, msg.body);
            stats_.incr("resyncs_applied");
            break;
        }
        case NodeMsg::Type::kFullSync: {
            if (role_ == Role::kSlave) master_link_ = conn->channel;
            load_snapshot(msg.field, msg.body);
            break;
        }
        case NodeMsg::Type::kProbe: {
            // Reply immediately (paper §III-D).
            stats_.incr("probes_answered");
            last_probe_ns_ = sim_.now().ns();
            self_.core->consume(costs_.event_dispatch);
            const std::string body =
                std::string(to_string(role_)) + ":" + kv::ll2string(applied_offset_);
            conn->channel->send(
                NodeMsg{NodeMsg::Type::kProbeAck, msg.field, body}.encode());
            break;
        }
        case NodeMsg::Type::kPromote: {
            if (role_ == Role::kSlave) {
                role_ = Role::kMaster;
                stats_.incr("promotions");
                // A stand-in master is no chain member: it must neither
                // relay frames nor serve leased tail reads while it serves
                // writes solo.
                reset_chain_state();
            }
            break;
        }
        case NodeMsg::Type::kDemote: {
            if (role_ == Role::kMaster) {
                role_ = Role::kSlave;
                stats_.incr("demotions");
                // A demoted master never feeds its old fan-out targets
                // again — the promoted master dials the slaves itself.
                // Releasing the links here is what lets the per-slave
                // connection graphs die with the demotion.
                for (auto& s : slaves_) {
                    if (!s.channel) continue;
                    const net::Channel* raw = s.channel.get();
                    s.channel->close();
                    s.channel.reset();
                    release_conn(raw);
                }
                slaves_.clear();
                available_slaves_ = 0;
                // Back to slave duty with stale chain knowledge: wait for a
                // fresh successor assignment before rejoining the chain.
                reset_chain_state();
            }
            break;
        }
        case NodeMsg::Type::kInitSync:
        case NodeMsg::Type::kProbeAck:
        case NodeMsg::Type::kQuorumAck:
        case NodeMsg::Type::kReadRepair:
            // Nic-KV traffic; a Host-KV server never receives these.
            stats_.incr("node_msgs_unexpected");
            break;
    }
}

// --- replication: slave side ----------------------------------------------------

void KvServer::apply_repl_stream(std::int64_t start_offset,
                                 const std::string& bytes) {
    sim::NodeScope owner(self_.ep);
    if (start_offset > applied_offset_) {
        // Ahead of us: either data was lost while this node was down, or a
        // resync snapshot is still in flight while fan-out continues. Hold
        // the frame; the snapshot/backlog will catch applied_offset_ up,
        // after which these frames drain in order.
        stats_.incr("repl_gap_frames");
        if (pending_stream_bytes_ + bytes.size() <= kPendingStreamCap) {
            pending_stream_bytes_ += bytes.size();
            pending_stream_.emplace_back(start_offset, bytes);
        } else {
            stats_.incr("repl_gap_dropped");
        }
        return;
    }
    apply_contiguous(start_offset, bytes);
    drain_pending_stream();
    // Low-latency progress report so a commit-gating master can release
    // parked replies after one round trip instead of one ack_interval.
    if (cfg_.ack_on_apply && role_ == Role::kSlave) {
        send_ack();
        send_quorum_ack();
    }
}

void KvServer::drain_pending_stream() {
    while (!pending_stream_.empty() &&
           pending_stream_.front().first <= applied_offset_) {
        auto [off, data] = std::move(pending_stream_.front());
        pending_stream_.pop_front();
        pending_stream_bytes_ -= data.size();
        apply_contiguous(off, data);
    }
}

void KvServer::apply_contiguous(std::int64_t start_offset,
                                std::string_view view) {
    SKV_DCHECK(start_offset <= applied_offset_);
    if (start_offset < applied_offset_) {
        const auto skip = static_cast<std::size_t>(applied_offset_ - start_offset);
        if (skip >= view.size()) return; // fully stale frame
        view.remove_prefix(skip);
    }
    repl_parser_.feed(view);
    applied_offset_ += static_cast<std::int64_t>(view.size());

    std::vector<std::string> argv;
    std::string err;
    for (;;) {
        const auto st = repl_parser_.next(&argv, &err);
        if (st == kv::resp::Status::kNeedMore) break;
        if (st == kv::resp::Status::kError) {
            stats_.incr("repl_protocol_errors");
            repl_parser_.reset();
            return;
        }
        apply_one(std::move(argv));
        argv.clear();
    }
}

void KvServer::apply_one(std::vector<std::string> argv) {
    self_.core->submit(
        costs_.jittered(rng_, costs_.slave_apply),
        [this, argv = std::move(argv)]() mutable {
            // Tagged stream commands carry the master's dup-suppression
            // entry: record it so this node, if promoted, suppresses client
            // retries of writes it already applied via fan-out — and never
            // applies the same (client, seq) twice even if a resync range
            // overlaps frames already seen.
            // Replicated dup-table eviction: drop the entry the master
            // trimmed so this replica's table stays bounded in lockstep.
            if (argv.size() == 2 && argv[0] == "WSEQEVICT") {
                if (const auto id = kv::string2ll(argv[1]);
                    id.has_value() && *id >= 0) {
                    dup_table_.erase(static_cast<std::uint64_t>(*id));
                }
                stats_.incr("dup_evictions_applied");
                c_repl_applied_.incr();
                return;
            }
            WriteTag tag{};
            std::string cached;
            if (strip_replicated_tag(argv, &tag, &cached)) {
                const auto it = dup_table_.find(tag.client);
                if (it != dup_table_.end() && it->second.seq >= tag.seq) {
                    stats_.incr("dup_stream_skipped");
                    return;
                }
                dup_record(tag, std::move(cached), /*ready=*/true,
                           applied_offset_);
            }
            std::string reply;
            commands_table_.execute(db_, rng_, argv, reply);
            c_repl_applied_.incr();
        });
}

void KvServer::load_snapshot(std::int64_t offset, const std::string& rdb_bytes) {
    const auto st = kv::rdb::load(rdb_bytes, db_);
    if (st != kv::rdb::LoadStatus::kOk) {
        stats_.incr("rdb_load_failures");
        return;
    }
    self_.core->consume(costs_.copy_cost(2 * rdb_bytes.size()));
    applied_offset_ = offset;
    repl_parser_.reset();
    stats_.incr("rdb_loaded");
    drain_pending_stream();
    if (cfg_.ack_on_apply && role_ == Role::kSlave) {
        send_ack();
        send_quorum_ack();
    }
}

void KvServer::send_ack() {
    if (role_ != Role::kSlave || !master_link_ || !master_link_->open()) return;
    self_.core->consume(costs_.event_dispatch);
    master_link_->send(
        NodeMsg{NodeMsg::Type::kAck, applied_offset_, cfg_.name}.encode());
}

// --- chain replication (slave side) -------------------------------------------

void KvServer::reset_chain_state() {
    chain_member_ = false;
    chain_is_tail_ = false;
    chain_succ_.clear();
    ++chain_dial_epoch_; // orphan any in-flight successor dial
    if (chain_succ_link_) {
        const net::Channel* old = chain_succ_link_.get();
        chain_succ_link_->close();
        chain_succ_link_.reset();
        release_conn(old);
    }
    chain_fwd_pending_.clear();
    chain_fwd_pending_bytes_ = 0;
}

void KvServer::handle_chain_set(const NodeMsg& msg) {
    if (role_ != Role::kSlave ||
        cfg_.replication_mode != ReplicationMode::kChain) {
        return;
    }
    stats_.incr("chain_sets");
    if (msg.body == "-") {
        // The master died: the chain carries no commits until it returns,
        // so leave it (and stop serving leased tail reads immediately).
        reset_chain_state();
        return;
    }
    chain_member_ = true;
    // The NIC's fan-out cursor at assignment time: data this member may
    // still be missing from before the splice. Reads stay refused until
    // the local apply cursor passes it.
    chain_read_floor_ = msg.field;
    chain_is_tail_ = msg.body.empty();
    if (msg.body == chain_succ_ &&
        (chain_is_tail_ || (chain_succ_link_ && chain_succ_link_->open()))) {
        return; // no successor change and the link is healthy
    }
    // Successor changed (or its link died): drop the old link and any
    // frames buffered for it — the NIC resyncs the new successor's gap.
    if (chain_succ_link_) {
        const net::Channel* old = chain_succ_link_.get();
        chain_succ_link_->close();
        chain_succ_link_.reset();
        release_conn(old);
    }
    chain_fwd_pending_.clear();
    chain_fwd_pending_bytes_ = 0;
    chain_succ_ = msg.body;
    if (!chain_is_tail_) dial_chain_successor();
}

void KvServer::dial_chain_successor() {
    const auto at = chain_succ_.find('@');
    if (at == std::string::npos) return;
    const auto ep =
        static_cast<net::EndpointId>(std::stoul(chain_succ_.substr(at + 1)));
    const std::uint64_t epoch = ++chain_dial_epoch_;
    auto cb = [this, epoch](net::ChannelPtr ch) {
        if (!ch) return;
        if (crashed_ || epoch != chain_dial_epoch_ || role_ != Role::kSlave) {
            ch->close();
            return;
        }
        ch = wrap_node_link(std::move(ch));
        chain_succ_link_ = ch;
        auto conn = std::make_shared<ClientConn>();
        conn->channel = ch;
        conn->node_link = true;
        clients_.push_back(conn);
        install_node_handler(conn);
        stats_.incr("chain_links_dialed");
        // Relay frames that arrived while the dial was in flight.
        while (!chain_fwd_pending_.empty()) {
            auto [off, data] = std::move(chain_fwd_pending_.front());
            chain_fwd_pending_.pop_front();
            chain_fwd_pending_bytes_ -= data.size();
            chain_succ_link_->send(
                NodeMsg{NodeMsg::Type::kChainData, off, data}.encode());
        }
    };
    SKV_CHECK(cfg_.transport == Transport::kRdma,
              "chain replication requires the RDMA transport");
    nets_.cm->connect(self_, ep, static_cast<std::uint16_t>(cfg_.port + 1), cb);
    sim_.after(cfg_.connect_retry, [this, epoch]() {
        if (crashed_ || epoch != chain_dial_epoch_ || chain_is_tail_ ||
            !chain_member_) {
            return;
        }
        if (chain_succ_link_ && chain_succ_link_->open()) return;
        stats_.incr("connect_retries");
        dial_chain_successor();
    });
}

void KvServer::chain_forward_frame(std::int64_t offset,
                                   const std::string& bytes) {
    if (chain_is_tail_ || chain_succ_.empty()) return;
    if (chain_succ_link_ && chain_succ_link_->open()) {
        self_.core->consume(costs_.jittered(rng_, costs_.repl_feed_slave) +
                            costs_.copy_cost(bytes.size()));
        chain_succ_link_->send(
            NodeMsg{NodeMsg::Type::kChainData, offset, bytes}.encode());
        stats_.incr("chain_forwards");
        return;
    }
    // Successor link still dialing: hold the frame (bounded). Overflow is
    // dropped — the NIC's stall resync serves the successor from the
    // master's backlog instead.
    if (chain_fwd_pending_bytes_ + bytes.size() <= kChainFwdPendingCap) {
        chain_fwd_pending_bytes_ += bytes.size();
        chain_fwd_pending_.emplace_back(offset, bytes);
    } else {
        stats_.incr("chain_fwd_dropped");
    }
}

// simlint3:observe-only
bool KvServer::chain_read_ok() const {
    if (cfg_.replication_mode != ReplicationMode::kChain) return false;
    if (role_ != Role::kSlave || !chain_member_ || !chain_is_tail_) return false;
    if (applied_offset_ < chain_read_floor_) return false; // still catching up
    // Probe lease: a tail the NIC can no longer reach must stop answering
    // before the detector excludes it from the commit set, or a partitioned
    // stale tail would serve reads that miss newer acked writes.
    return sim_.now().ns() - last_probe_ns_ <= cfg_.chain_read_lease.ns();
}

// --- quorum replication -------------------------------------------------------

void KvServer::send_quorum_ack() {
    if (cfg_.replication_mode != ReplicationMode::kQuorum) return;
    if (role_ != Role::kSlave || !nic_registration_ ||
        !nic_registration_->open()) {
        return;
    }
    self_.core->consume(costs_.event_dispatch);
    nic_registration_->send(
        NodeMsg{NodeMsg::Type::kQuorumAck, applied_offset_, cfg_.name}.encode());
}

void KvServer::maybe_read_repair(std::int64_t offset) {
    // ABD read phase 2: this read observed state at `offset`, which is not
    // yet majority-acknowledged. Push the missing backlog suffix back
    // through the NIC so it reaches a majority before the parked reply
    // releases. High-water deduped: concurrent parked reads share one
    // write-back.
    if (!nic_attached_ || !nic_link_ || !nic_link_->open()) return;
    if (offset <= read_repair_sent_ || offset <= quorum_commit_offset_) return;
    const std::int64_t from = std::max<std::int64_t>(quorum_commit_offset_, 0);
    if (!backlog_.can_serve(from)) return; // resync machinery covers laggards
    const std::string range = backlog_.read_from(from);
    if (range.empty()) return;
    self_.core->consume(costs_.jittered(rng_, costs_.offload_request_build) +
                        costs_.copy_cost(range.size()));
    nic_link_->send(NodeMsg{NodeMsg::Type::kReadRepair, from, range}.encode());
    read_repair_sent_ = backlog_.master_offset();
    stats_.incr("read_repairs_sent");
}

// --- role wiring -------------------------------------------------------------------

void KvServer::slaveof_baseline(net::EndpointId master_ep,
                                std::uint16_t node_port) {
    role_ = Role::kSlave;
    baseline_master_ep_ = master_ep;
    baseline_master_port_ = node_port;
    const std::uint64_t attempt = ++baseline_connect_attempt_;
    if (master_link_) {
        // Re-pointing at a (new) master: the old link and its retained
        // connection object are dead weight from here on. Release them.
        const net::Channel* old = master_link_.get();
        master_link_.reset();
        release_conn(old);
    }
    auto cb = [this, attempt](net::ChannelPtr ch) {
        if (!ch || crashed_ || attempt != baseline_connect_attempt_) return;
        ch = wrap_node_link(std::move(ch));
        master_link_ = ch;
        auto conn = std::make_shared<ClientConn>();
        conn->channel = ch;
        conn->node_link = true;
        clients_.push_back(conn);
        install_node_handler(conn);
        ch->send(NodeMsg{NodeMsg::Type::kSync, applied_offset_, cfg_.name}.encode());
    };
    if (cfg_.transport == Transport::kTcp) {
        nets_.tcp->connect(self_, master_ep, node_port, cb);
    } else {
        nets_.cm->connect(self_, master_ep, node_port, cb);
    }
    // The connection handshake itself rides unprotected fabric messages:
    // if it falls into a loss hole, dial again.
    sim_.after(cfg_.connect_retry, [this, attempt]() {
        if (crashed_ || attempt != baseline_connect_attempt_) return;
        if (master_link_ && master_link_->open()) return;
        stats_.incr("connect_retries");
        slaveof_baseline(baseline_master_ep_, baseline_master_port_);
    });
}

void KvServer::slaveof_skv(net::EndpointId nic_ep, std::uint16_t nic_port) {
    role_ = Role::kSlave;
    skv_nic_ep_ = nic_ep;
    skv_nic_port_ = nic_port;
    const std::uint64_t attempt = ++skv_connect_attempt_;
    // A crashed-and-recovered node may still hold an open-looking channel
    // whose peer has moved on; registration always starts fresh and the
    // superseded link is released.
    if (nic_registration_) {
        const net::Channel* old = nic_registration_.get();
        nic_registration_.reset();
        release_conn(old);
    }
    last_reregister_ns_ = sim_.now().ns();
    // Paper Fig. 8 step 1: the request carries the slave's replication ID,
    // offset, and identity. The "<name>@<endpoint>" body lets the master
    // dial back for step 3.
    auto cb = [this, attempt](net::ChannelPtr ch) {
        if (!ch || crashed_ || attempt != skv_connect_attempt_) return;
        ch = wrap_node_link(std::move(ch));
        nic_registration_ = ch;
        last_probe_ns_ = sim_.now().ns();
        auto conn = std::make_shared<ClientConn>();
        conn->channel = ch;
        conn->node_link = true;
        clients_.push_back(conn);
        install_node_handler(conn);
        const std::string ident = cfg_.name + "@" + std::to_string(self_.ep);
        ch->send(NodeMsg{NodeMsg::Type::kInitSync, applied_offset_, ident}.encode());
    };
    SKV_CHECK(cfg_.transport == Transport::kRdma, "SKV mode requires the RDMA transport");
    nets_.cm->connect(self_, nic_ep, nic_port, cb);
    sim_.after(cfg_.connect_retry, [this, attempt]() {
        if (crashed_ || attempt != skv_connect_attempt_) return;
        if (nic_registration_ && nic_registration_->open()) return;
        stats_.incr("connect_retries");
        slaveof_skv(skv_nic_ep_, skv_nic_port_);
    });
}

void KvServer::attach_nic(net::EndpointId nic_ep, std::uint16_t nic_port) {
    role_ = Role::kMaster;
    skv_nic_ep_ = nic_ep;
    skv_nic_port_ = nic_port;
    SKV_CHECK(cfg_.offload_replication);
    const std::uint64_t attempt = ++skv_connect_attempt_;
    if (nic_link_) {
        const net::Channel* old = nic_link_.get();
        nic_link_.reset();
        release_conn(old);
    }
    nic_attached_ = false;
    auto cb = [this, attempt](net::ChannelPtr ch) {
        if (!ch || crashed_ || attempt != skv_connect_attempt_) return;
        ch = wrap_node_link(std::move(ch));
        nic_link_ = ch;
        nic_attached_ = true;
        last_probe_ns_ = sim_.now().ns();
        auto conn = std::make_shared<ClientConn>();
        conn->channel = ch;
        conn->node_link = true;
        clients_.push_back(conn);
        install_node_handler(conn);
        // Identify ourselves to the NIC as the master.
        const std::string ident = cfg_.name + "@" + std::to_string(self_.ep);
        ch->send(NodeMsg{NodeMsg::Type::kSync, backlog_.master_offset(),
                         "master:" + ident}
                     .encode());
    };
    SKV_CHECK(cfg_.transport == Transport::kRdma, "SKV mode requires the RDMA transport");
    nets_.cm->connect(self_, nic_ep, nic_port, cb);
    sim_.after(cfg_.connect_retry, [this, attempt]() {
        if (crashed_ || attempt != skv_connect_attempt_) return;
        if (nic_link_ && nic_link_->open()) return;
        stats_.incr("connect_retries");
        attach_nic(skv_nic_ep_, skv_nic_port_);
    });
}

// --- slave link for acks (SKV slaves ack over the master's direct channel) -----

void KvServer::cron() {
    sim::NodeScope owner(self_.ep);
    if (!crashed_) {
        // Active expiry + incremental rehash make progress even when idle.
        const std::size_t removed =
            db_.active_expire_cycle(rng_, cfg_.expire_samples);
        if (removed > 0) {
            self_.core->consume(costs_.cmd_exec_write * static_cast<std::int64_t>(removed));
            stats_.incr("expired_keys", removed);
        }
        db_.keys().rehash_step(4);

        // Reap connections whose channel is gone (FIN received, protocol
        // error, reliable layer declared broken) — Redis frees the client
        // object on EOF; retaining ours forever was the leak simlint2's
        // [cycle] rule guards the fix for.
        std::erase_if(clients_, [](const ClientPtr& c) {
            return !c->channel || !c->channel->open();
        });

        ++cron_ticks_;
        const std::int64_t acks_every =
            std::max<std::int64_t>(1, cfg_.ack_interval.ns() / cfg_.cron_interval.ns());
        if (cron_ticks_ % acks_every == 0) {
            send_ack();
            send_quorum_ack();
        }

        // Periodic RDB persistence: the snapshot + offset pair is the only
        // state a cold restart recovers from.
        if (cfg_.persist_interval.ns() > 0) {
            const std::int64_t persists_every = std::max<std::int64_t>(
                1, cfg_.persist_interval.ns() / cfg_.cron_interval.ns());
            if (cron_ticks_ % persists_every == 0) persist_snapshot();
        }

        // SKV self-healing: a node Nic-KV has silently stopped probing (a
        // one-directional partition gives this side no broken-link signal)
        // or a slave whose initial sync never arrived re-registers, which
        // re-runs the Fig. 8 handshake and the backlog partial resync.
        if (skv_nic_ep_ != net::kInvalidEndpoint &&
            cfg_.probe_silence_timeout.ns() > 0) {
            const std::int64_t now = sim_.now().ns();
            const std::int64_t silence = cfg_.probe_silence_timeout.ns();
            if (now - last_reregister_ns_ > silence) {
                if (role_ == Role::kSlave) {
                    const bool probe_silent =
                        nic_registration_ && nic_registration_->open() &&
                        now - last_probe_ns_ > silence;
                    if (probe_silent || !master_link_) {
                        stats_.incr("reregistrations");
                        slaveof_skv(skv_nic_ep_, skv_nic_port_);
                    }
                } else if (cfg_.offload_replication && nic_attached_ &&
                           now - last_probe_ns_ > silence) {
                    stats_.incr("reregistrations");
                    last_reregister_ns_ = now;
                    attach_nic(skv_nic_ep_, skv_nic_port_);
                }
            }
        }
    }
    sim_.after(cfg_.cron_interval, [this]() { cron(); });
}

// --- fault injection ------------------------------------------------------------------

void KvServer::crash() {
    SKV_CHECK(!crashed_);
    crashed_ = true;
    self_.core->halt();
    nets_.fabric->sever(self_.ep);
    // The process is gone, and so is every connection object in it. No
    // close() here — a FIN from a dead process is wrong and the halted
    // core could not run it anyway; dropping the references is exactly
    // what OS teardown does. Peers learn via RTO exhaustion and probe
    // timeouts. (The weak handler captures are what make the drop
    // actually free the graphs — see DESIGN.md "Ownership model".)
    clients_.clear();
    slaves_.clear();
    master_link_.reset();
    nic_link_.reset();
    nic_registration_.reset();
    nic_attached_ = false;
    pending_stream_.clear();
    pending_stream_bytes_ = 0;
    // Chain/quorum volatile state dies with the process too. No close() on
    // the successor link either — same reasoning as above.
    chain_member_ = false;
    chain_is_tail_ = false;
    chain_succ_.clear();
    chain_succ_link_.reset();
    ++chain_dial_epoch_;
    chain_fwd_pending_.clear();
    chain_fwd_pending_bytes_ = 0;
    quorum_commit_offset_ = 0;
    read_repair_sent_ = 0;
    // Parked replies die with their connections; their wait-timeout events
    // find nothing and no-op. The dup table survives for a *warm* restart
    // (same process memory); a cold recover() wipes it.
    parked_.clear();
    stats_.incr("crashes");
}

void KvServer::recover(RecoveryMode mode) {
    SKV_CHECK(crashed_);
    crashed_ = false;
    self_.core->resume();
    nets_.fabric->restore(self_.ep);
    stats_.incr("recoveries");
    if (mode == RecoveryMode::kCold) {
        // Machine restart: process memory is gone. Reload the last
        // persisted snapshot (possibly none) and resume the stream at its
        // offset — NOT at the pre-crash offset, which only existed in RAM.
        stats_.incr("cold_recoveries");
        db_.clear();
        dup_table_.clear();
        repl_parser_.reset();
        applied_offset_ = 0;
        if (!persisted_rdb_.empty()) {
            const auto st = kv::rdb::load(persisted_rdb_, db_);
            SKV_CHECK(st == kv::rdb::LoadStatus::kOk);
            self_.core->consume(costs_.copy_cost(2 * persisted_rdb_.size()));
            applied_offset_ = persisted_offset_;
        }
        // A master's stream resumes where the snapshot was taken; rewinding
        // to zero would make every already-synced slave treat new frames as
        // stale duplicates of offsets it already applied.
        backlog_.reset(role_ == Role::kSlave ? 0 : persisted_offset_);
    }
    // Reconnect: channels died with the process (ring cursors on the other
    // side advanced past writes this host never saw, so the old channels
    // are unusable). An SKV slave re-registers with Nic-KV, which notices
    // its stale offset and arranges a resync; an SKV master re-attaches,
    // which tells the failure detector it is back.
    if (skv_nic_ep_ != net::kInvalidEndpoint) {
        if (role_ == Role::kSlave) {
            slaveof_skv(skv_nic_ep_, skv_nic_port_);
        } else if (cfg_.offload_replication) {
            attach_nic(skv_nic_ep_, skv_nic_port_);
        }
        return;
    }
    if (role_ == Role::kSlave && baseline_master_ep_ != net::kInvalidEndpoint) {
        slaveof_baseline(baseline_master_ep_, baseline_master_port_);
    }
}

void KvServer::persist_snapshot() {
    persisted_rdb_ = kv::rdb::save(db_);
    persisted_offset_ =
        role_ == Role::kSlave ? applied_offset_ : backlog_.master_offset();
    // fork() copy-on-write plus serialization, same cost shape as the
    // full-sync path.
    self_.core->consume(sim::microseconds(400) +
                        costs_.copy_cost(2 * persisted_rdb_.size()));
    stats_.incr("snapshots_persisted");
}

std::string KvServer::info_sections() const {
    std::string out;
    out += "# Server\r\n";
    out += "server_name:" + cfg_.name + "\r\n";
    out += "transport:" + std::string(to_string(cfg_.transport)) + "\r\n";
    out += "uptime_in_seconds:" + kv::ll2string(sim_.now().ns() / 1'000'000'000) + "\r\n";
    out += "# Clients\r\n";
    out += "connected_clients:" + kv::ll2string(static_cast<long long>(clients_.size())) + "\r\n";
    out += "# Memory\r\n";
    out += "used_memory:" + kv::ll2string(static_cast<long long>(db_.memory_bytes())) + "\r\n";
    out += "# Replication\r\n";
    out += "role:" + std::string(to_string(role_)) + "\r\n";
    out += "offload_replication:" +
           std::string(cfg_.offload_replication ? "yes" : "no") + "\r\n";
    out += "replication_mode:" +
           std::string(to_string(cfg_.replication_mode)) + "\r\n";
    out += "connected_slaves:" + kv::ll2string(static_cast<long long>(slaves_.size())) + "\r\n";
    out += "available_slaves:" + kv::ll2string(available_slaves_) + "\r\n";
    out += "master_repl_offset:" + kv::ll2string(backlog_.master_offset()) + "\r\n";
    out += "slave_repl_offset:" + kv::ll2string(applied_offset_) + "\r\n";
    out += "repl_backlog_size:" + kv::ll2string(static_cast<long long>(backlog_.capacity())) + "\r\n";
    out += "# Keyspace\r\n";
    out += "db0:keys=" + kv::ll2string(static_cast<long long>(db_.size())) +
           ",expires=" + kv::ll2string(static_cast<long long>(db_.expires_size())) + "\r\n";
    out += "# Stats\r\n";
    out += "total_commands_processed:" + kv::ll2string(static_cast<long long>(commands_)) + "\r\n";
    out += "total_reads:" + kv::ll2string(static_cast<long long>(stats_.counter("reads"))) + "\r\n";
    out += "total_writes:" + kv::ll2string(static_cast<long long>(stats_.counter("writes"))) + "\r\n";
    out += "slowlog_len:" + kv::ll2string(static_cast<long long>(slowlog_.size())) + "\r\n";
    out += "# Latencystats\r\n";
    if (const auto* h = t_cmd_all_.histogram(); h != nullptr && h->count() > 0) {
        out += "cmd_service_count:" + kv::ll2string(static_cast<long long>(h->count())) + "\r\n";
        out += "cmd_service_p50_usec:" + kv::ll2string(h->p50_ns() / 1'000) + "\r\n";
        out += "cmd_service_p99_usec:" + kv::ll2string(h->p99_ns() / 1'000) + "\r\n";
        out += "cmd_service_max_usec:" + kv::ll2string(h->max_ns() / 1'000) + "\r\n";
    }
    return out;
}

std::string KvServer::info() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s role=%s transport=%s keys=%zu offset=%lld applied=%lld "
                  "slaves=%zu cmds=%llu",
                  cfg_.name.c_str(), to_string(role_), to_string(cfg_.transport),
                  db_.size(), static_cast<long long>(backlog_.master_offset()),
                  static_cast<long long>(applied_offset_), slaves_.size(),
                  static_cast<unsigned long long>(commands_));
    return buf;
}

} // namespace skv::server
