#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cost_model.hpp"
#include "kv/backlog.hpp"
#include "kv/command.hpp"
#include "kv/db.hpp"
#include "kv/resp.hpp"
#include "net/channel.hpp"
#include "net/tcp.hpp"
#include "rdma/cm.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "server/config.hpp"
#include "server/protocol.hpp"
#include "sim/simulation.hpp"

namespace skv::server {

/// A Host-KV instance: the single-threaded, event-driven Redis-style
/// server. One per simulated host. Depending on configuration it acts as:
///
///  * a standalone server (Fig. 10 experiments),
///  * a baseline master that replicates to each slave itself — one buffer
///    feed and one work request per slave per write (RDMA-Redis / Fig. 7),
///  * an SKV master that posts a single replication request to Nic-KV per
///    write (Fig. 11/12/14),
///  * a slave applying the replication stream and reporting progress.
///
/// Two listening ports: `cfg.port` speaks RESP to clients; `cfg.port + 1`
/// speaks NodeMsg to peers (slaves, masters, Nic-KV).
class KvServer {
public:
    struct Transports {
        net::Fabric* fabric = nullptr;
        net::TcpNetwork* tcp = nullptr;
        rdma::ConnectionManager* cm = nullptr;
    };

    KvServer(sim::Simulation& sim, const cpu::CostModel& costs,
             Transports nets, net::NodeRef self, ServerConfig cfg);

    /// Begin listening on the client and node ports and start serverCron.
    void start();

    // --- role wiring -------------------------------------------------------
    /// Baseline replication: connect to the master's node port and SYNC.
    void slaveof_baseline(net::EndpointId master_ep, std::uint16_t node_port);
    /// SKV replication: register with Nic-KV on the master's SmartNIC
    /// (paper Fig. 8 step 1). The NIC coordinates the rest.
    void slaveof_skv(net::EndpointId nic_ep, std::uint16_t nic_port);
    /// SKV master: open the replication-request channel to the local
    /// Nic-KV. Must be called before writes arrive.
    void attach_nic(net::EndpointId nic_ep, std::uint16_t nic_port);

    // --- fault injection ------------------------------------------------------
    /// Crash the host process: the core halts and the endpoint is severed.
    void crash();
    /// How much state a restart recovers. kWarm models a process pause
    /// (data survives in the simulated process object); kCold models a
    /// real machine restart — everything volatile is gone and the node
    /// reloads the last persisted RDB snapshot (see persist_interval),
    /// then catches up via backlog partial resync or full sync.
    enum class RecoveryMode : std::uint8_t { kWarm, kCold };
    /// Restart after a crash. The replication stream has moved on while
    /// the node was down; it resynchronizes via the NIC-driven resync.
    void recover(RecoveryMode mode = RecoveryMode::kWarm);
    [[nodiscard]] bool crashed() const { return crashed_; }
    /// Offset of the last persisted snapshot (what a cold restart resumes
    /// from); 0 when nothing was persisted yet.
    [[nodiscard]] std::int64_t persisted_offset() const { return persisted_offset_; }
    /// Parked replies currently waiting for replica acknowledgements.
    [[nodiscard]] std::size_t parked_replies() const { return parked_.size(); }
    /// Retained duplicate-suppression entries (one per writing client).
    [[nodiscard]] std::size_t dup_entries() const { return dup_table_.size(); }
    /// Whether a duplicate-suppression entry for `client` is retained.
    [[nodiscard]] bool dup_has(std::uint64_t client) const {
        return dup_table_.find(client) != dup_table_.end();
    }
    /// Chain mode: whether this node currently believes it is the tail.
    [[nodiscard]] bool chain_is_tail() const {
        return chain_member_ && chain_is_tail_;
    }
    /// Quorum mode: the majority watermark last released by the NIC.
    [[nodiscard]] std::int64_t quorum_commit_offset() const {
        return quorum_commit_offset_;
    }

    // --- introspection -----------------------------------------------------------
    [[nodiscard]] kv::Database& db() { return db_; }
    [[nodiscard]] const kv::Database& db() const { return db_; }
    [[nodiscard]] Role role() const { return role_; }
    [[nodiscard]] const ServerConfig& config() const { return cfg_; }
    [[nodiscard]] net::NodeRef node() const { return self_; }
    [[nodiscard]] std::int64_t master_offset() const {
        return backlog_.master_offset();
    }
    [[nodiscard]] std::int64_t slave_applied_offset() const { return applied_offset_; }
    [[nodiscard]] std::size_t slave_count() const { return slaves_.size(); }
    [[nodiscard]] int available_slaves() const { return available_slaves_; }
    /// Connection objects currently retained (clients + node links); the
    /// lifetime regression test asserts this shrinks when links die.
    [[nodiscard]] std::size_t client_conns() const { return clients_.size(); }
    [[nodiscard]] obs::Registry& stats() { return stats_; }
    [[nodiscard]] std::uint64_t commands_processed() const { return commands_; }
    /// The SKV master's replication-request channel (introspection).
    [[nodiscard]] const net::ChannelPtr& nic_link() const { return nic_link_; }

    /// INFO-style one-line status (examples print this).
    [[nodiscard]] std::string info() const;
    /// The INFO command's sectioned body (Server/Clients/Replication/...).
    [[nodiscard]] std::string info_sections() const;

    /// One retained slow command (SLOWLOG GET). Times are sim-time.
    struct SlowlogEntry {
        std::uint64_t id = 0;
        std::int64_t when_ns = 0;
        std::int64_t dur_ns = 0;
        std::vector<std::string> argv;
    };
    [[nodiscard]] const std::deque<SlowlogEntry>& slowlog() const {
        return slowlog_;
    }

    /// Wire the cluster's observability tracer. `track_name` names this
    /// server's chrome-trace row. The tracer only observes (no events, no
    /// RNG), so wiring or enabling it never changes the trace digest.
    void set_tracer(obs::Tracer* tracer, const std::string& track_name);

private:
    struct ClientConn {
        net::ChannelPtr channel;
        kv::resp::RequestParser parser;
        bool node_link = false;
    };
    using ClientPtr = std::shared_ptr<ClientConn>;

    struct SlaveLink {
        std::string name;
        net::ChannelPtr channel;
        std::int64_t ack_offset = 0;
        bool valid = true;
    };

    // -- listening / connections
    void listen_all();
    void on_client_accept(net::ChannelPtr ch);
    void on_node_accept(net::ChannelPtr ch);
    /// Wrap a node link in the retransmitting layer (when configured) and
    /// install the broken-link reaction.
    net::ChannelPtr wrap_node_link(net::ChannelPtr ch);
    void on_node_link_broken(const net::Channel* raw);
    /// Install the NodeMsg receive handler on `conn`'s channel. The handler
    /// captures the connection weakly: it is stored inside the channel,
    /// which the connection owns, so an owning capture would be a
    /// reference cycle and the link would never be reclaimed (see
    /// DESIGN.md "Ownership model").
    void install_node_handler(const ClientPtr& conn);
    /// Close and drop the retained ClientConn owning `raw` (if any).
    void release_conn(const net::Channel* raw);

    // -- client command path
    void on_client_data(const ClientPtr& conn, std::string payload);
    void run_command(const ClientPtr& conn, std::vector<std::string> argv);
    [[nodiscard]] sim::Duration command_cost(
        const std::vector<std::string>& argv, const kv::CommandSpec* spec) const;
    /// `reason` receives a stats-counter key naming why the write was gated.
    [[nodiscard]] bool write_allowed(std::string* err, const char** reason) const;

    // -- commit gating / duplicate suppression
    /// Deliver `reply` now, or — when commit gating is on and `offset` is
    /// not yet acknowledged by enough replicas — park it. Tagged writes
    /// also record their duplicate-suppression entry (ready once sent).
    void deliver_or_park(const ClientPtr& conn, std::string reply,
                         std::int64_t offset, bool is_write, bool tagged,
                         WriteTag tag, bool traced);
    /// Replicas needed to consider `offset` committed right now.
    [[nodiscard]] int commit_need() const;
    [[nodiscard]] int acked_replicas(std::int64_t offset) const;
    /// Protocol-aware commit predicate: fan-out/chain count slave acks
    /// (chain needs every valid member — tail semantics); quorum gates on
    /// the NIC-released majority watermark.
    [[nodiscard]] bool commit_satisfied(std::int64_t offset) const;
    /// Re-deliver every parked reply whose offset became acknowledged
    /// (called whenever ack progress or the slave set changes).
    void flush_parked();
    void on_wait_timeout(std::uint64_t id);
    /// A retry arrived for a write that is applied but still parked:
    /// point the waiting reply at the retry's connection.
    void attach_dup_waiter(const WriteTag& tag, const ClientPtr& conn,
                           bool traced);
    void dup_record(const WriteTag& tag, std::string reply, bool ready,
                    std::int64_t offset);

    // -- persistence
    void persist_snapshot();

    // -- replication (master side)
    void propagate(const std::vector<std::string>& repl_argv);
    void handle_node_msg(const ClientPtr& conn, const NodeMsg& msg);
    void serve_initial_sync(const std::string& slave_name,
                            std::int64_t slave_offset, net::ChannelPtr direct);
    void connect_and_sync_slave(const std::string& slave_name,
                                std::int64_t offset);

    // -- replication (slave side)
    void apply_repl_stream(std::int64_t start_offset, const std::string& bytes);
    void apply_contiguous(std::int64_t start_offset, std::string_view bytes);
    void drain_pending_stream();
    void apply_one(std::vector<std::string> argv);
    void load_snapshot(std::int64_t offset, const std::string& rdb_bytes);
    void send_ack();

    // -- chain replication (slave side, DESIGN.md §13)
    void handle_chain_set(const NodeMsg& msg);
    /// Relay a chain frame to the successor (or buffer it while the
    /// successor link is still dialing), then apply it locally.
    void chain_forward_frame(std::int64_t offset, const std::string& bytes);
    void dial_chain_successor();
    void reset_chain_state();
    /// Whether this node may answer a read right now as the chain tail:
    /// requires tail role, catch-up past the assignment-time read floor,
    /// and a fresh probe lease (see ServerConfig::chain_read_lease).
    [[nodiscard]] bool chain_read_ok() const;

    // -- quorum replication (DESIGN.md §13)
    /// Slave: report applied progress to the NIC's ack aggregation.
    void send_quorum_ack();
    /// Master: ABD read-phase write-back — push the not-yet-majority
    /// backlog suffix through the NIC so the state a parked read observed
    /// reaches a majority before the reply releases.
    void maybe_read_repair(std::int64_t offset);

    // -- introspection commands / latency accounting
    void record_command_latency(const std::vector<std::string>& argv,
                                bool is_write, sim::SimTime t0);
    [[nodiscard]] std::string slowlog_reply(const std::vector<std::string>& argv);
    [[nodiscard]] std::string latency_reply(const std::vector<std::string>& argv);

    // -- cron
    void cron();

    sim::Simulation& sim_;
    const cpu::CostModel& costs_;
    Transports nets_;
    net::NodeRef self_;
    ServerConfig cfg_;
    sim::Rng rng_;

    kv::Database db_;
    kv::ReplBacklog backlog_;
    const kv::CommandTable& commands_table_;

    Role role_ = Role::kStandalone;
    bool started_ = false;
    bool crashed_ = false;

    std::vector<ClientPtr> clients_;

    // master state
    std::vector<SlaveLink> slaves_;      // baseline fan-out targets
    net::ChannelPtr nic_link_;           // SKV: replication requests to Nic-KV
    int available_slaves_ = 0;           // as reported by the failure detector
    bool nic_attached_ = false;

    // slave state
    net::ChannelPtr master_link_;        // baseline: channel to master;
                                         // SKV: direct channel from master
    net::ChannelPtr nic_registration_;   // SKV slave: channel to Nic-KV
    net::EndpointId skv_nic_ep_ = net::kInvalidEndpoint; // for re-registration
    std::uint16_t skv_nic_port_ = 0;
    net::EndpointId baseline_master_ep_ = net::kInvalidEndpoint;
    std::uint16_t baseline_master_port_ = 0;
    // Connect attempts are numbered so a late handshake completion (or a
    // scheduled retry) from a superseded attempt is ignored.
    std::uint64_t skv_connect_attempt_ = 0;
    std::uint64_t baseline_connect_attempt_ = 0;
    std::int64_t last_probe_ns_ = 0;     // when Nic-KV last probed us
    std::int64_t last_reregister_ns_ = 0;
    std::int64_t applied_offset_ = 0;
    kv::resp::RequestParser repl_parser_;
    /// Stream frames that arrived ahead of applied_offset_ (e.g. fan-out
    /// racing an in-flight snapshot during resync), drained once the
    /// snapshot lands. Bounded; overflow forces another resync.
    std::deque<std::pair<std::int64_t, std::string>> pending_stream_;
    std::size_t pending_stream_bytes_ = 0;
    static constexpr std::size_t kPendingStreamCap = 64 * 1024 * 1024;

    // chain state (slave side): successor assignment from the NIC.
    bool chain_member_ = false;    // holds a live kChainSet assignment
    bool chain_is_tail_ = false;
    std::string chain_succ_;       // successor "<name>@<ep>", "" = tail
    net::ChannelPtr chain_succ_link_;
    std::uint64_t chain_dial_epoch_ = 0;
    std::int64_t chain_read_floor_ = 0;
    /// Frames to relay that arrived while the successor link was dialing.
    /// Bounded; overflow drops (the NIC's stall resync heals the gap).
    std::deque<std::pair<std::int64_t, std::string>> chain_fwd_pending_;
    std::size_t chain_fwd_pending_bytes_ = 0;
    static constexpr std::size_t kChainFwdPendingCap = 8 * 1024 * 1024;

    // quorum state (master side).
    std::int64_t quorum_commit_offset_ = 0; // NIC-released majority watermark
    std::int64_t read_repair_sent_ = 0;     // high-water dedup for write-backs

    // Duplicate suppression: last write sequence executed per client, with
    // the cached reply. `ready` flips once the reply was actually released
    // to a client (commit gating can hold it back); `offset` is the stream
    // offset a retry must wait on while not ready. `last_used` orders LRU
    // eviction beyond dup_table_max (see dup_record).
    struct DupState {
        std::uint64_t seq = 0;
        std::string reply;
        bool ready = true;
        std::int64_t offset = 0;
        std::uint64_t last_used = 0;
    };
    std::map<std::uint64_t, DupState> dup_table_;
    std::uint64_t dup_use_tick_ = 0;

    // Replies parked by commit gating, keyed by a monotonic id so flush
    // order is deterministic.
    struct Parked {
        std::weak_ptr<ClientConn> conn;
        std::string reply;
        std::int64_t offset = 0;
        bool is_write = false;
        bool tagged = false;
        WriteTag tag{};
        bool traced = false;
    };
    std::map<std::uint64_t, Parked> parked_;
    std::uint64_t next_parked_id_ = 0;

    // Last persisted snapshot (the "disk" a cold restart recovers from).
    std::string persisted_rdb_;
    std::int64_t persisted_offset_ = 0;

    std::uint64_t commands_ = 0;
    std::int64_t cron_ticks_ = 0;
    obs::Registry stats_;
    // Hot-path counters/timers pre-resolved against stats_ in the
    // constructor (same cells the string API addresses).
    obs::Counter c_reads_;
    obs::Counter c_writes_;
    obs::Counter c_repl_offload_;
    obs::Counter c_repl_sends_;
    obs::Counter c_repl_applied_;
    obs::Timer t_cmd_all_;
    obs::Timer t_cmd_write_;
    obs::Timer t_cmd_read_;

    obs::Tracer* tracer_ = nullptr;
    std::uint32_t obs_track_ = UINT32_MAX;

    // SLOWLOG / LATENCY state (sim-time, deterministic).
    std::uint64_t next_slowlog_id_ = 0;
    std::deque<SlowlogEntry> slowlog_;
    struct LatencyEvent {
        std::int64_t last_ns = 0;
        std::int64_t last_dur_ns = 0;
        std::int64_t max_dur_ns = 0;
        std::deque<std::pair<std::int64_t, std::int64_t>> history;
    };
    std::map<std::string, LatencyEvent> latency_events_;
};

} // namespace skv::server
