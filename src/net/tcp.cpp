#include "net/tcp.hpp"

#include <utility>

#include "sim/check.hpp"

namespace skv::net {

TcpNetwork::TcpNetwork(sim::Simulation& sim, Fabric& fabric,
                       const cpu::CostModel& costs)
    : sim_(sim), fabric_(fabric), costs_(costs), rng_(sim.fork_rng()) {}

void TcpNetwork::listen(NodeRef node, std::uint16_t port, AcceptHandler on_accept) {
    SKV_CHECK(node.valid());
    listeners_[ListenerKey{node.ep, port}] = Listener{node, std::move(on_accept)};
}

void TcpNetwork::stop_listening(EndpointId ep, std::uint16_t port) {
    listeners_.erase(ListenerKey{ep, port});
}

void TcpNetwork::connect(NodeRef from, EndpointId to, std::uint16_t port,
                         ConnectHandler on_connected) {
    SKV_CHECK(from.valid());
    // SYN: one control message across the fabric plus kernel work on the
    // initiator.
    from.core->consume(costs_.jittered(rng_, costs_.tcp_side_cost(64)));
    fabric_.send(from.ep, to, 64, [this, from, to, port,
                                   on_connected = std::move(on_connected)]() mutable {
        auto it = listeners_.find(ListenerKey{to, port});
        if (it == listeners_.end()) return; // connection refused: no SYN-ACK
        const Listener listener = it->second;
        // SYN-ACK back to the initiator; accept() completes on arrival.
        listener.node.core->consume(costs_.jittered(rng_, costs_.tcp_side_cost(64)));
        fabric_.send(to, from.ep, 64, [this, from, listener,
                                       on_connected = std::move(on_connected)]() {
            auto client_side = std::make_shared<TcpChannel>(*this, from, listener.node.ep);
            auto server_side = std::make_shared<TcpChannel>(*this, listener.node, from.ep);
            client_side->wire(server_side);
            server_side->wire(client_side);
            // Shared deterministic flow id for tracer correlation; the top
            // bit keeps the TCP id space disjoint from the RDMA CM's.
            const std::uint64_t flow = (1ULL << 63) | ++next_flow_;
            client_side->set_flow_id(flow);
            server_side->set_flow_id(flow);
            if (listener.on_accept) listener.on_accept(server_side);
            if (on_connected) on_connected(client_side);
        });
    });
}

TcpChannel::TcpChannel(TcpNetwork& net, NodeRef self, EndpointId peer)
    : net_(net), self_(self), peer_(peer), rng_(net.simulation().fork_rng()) {}

void TcpChannel::send(std::string payload) {
    if (!open_) return;
    const std::size_t bytes = payload.size();
    auto remote = remote_.lock();
    if (!remote) return;
    // Sender-side kernel work: send() syscall, protocol processing, copy
    // user -> kernel -> NIC. The segment leaves once that work is done.
    auto self = shared_from_this();
    self_.core->submit(
        net_.costs().jittered(rng_, net_.costs().tcp_side_cost(bytes)),
        [self, remote, bytes, payload = std::move(payload)]() mutable {
            self->net_.fabric().send(
                self->self_.ep, self->peer_, bytes + 66 /* eth+ip+tcp hdrs */,
                [remote, payload = std::move(payload)]() mutable {
                    remote->deliver(std::move(payload));
                });
        });
}

void TcpChannel::deliver(std::string payload) {
    if (!open_) return;
    // Receiver-side kernel work happens when the application read()s: the
    // cost lands on the receiver's core ahead of the message handler, so
    // the handler observes post-syscall timing.
    const std::size_t bytes = payload.size();
    auto self = shared_from_this();
    self_.core->submit(
        net_.costs().jittered(rng_, net_.costs().tcp_side_cost(bytes)),
        [self, payload = std::move(payload)]() mutable {
            if (!self->open_) return;
            if (self->on_message_) {
                self->on_message_(std::move(payload));
            } else {
                self->pending_.push_back(std::move(payload));
            }
        });
}

void TcpChannel::set_on_message(MessageHandler handler) {
    on_message_ = std::move(handler);
    while (on_message_ && !pending_.empty()) {
        auto payload = std::move(pending_.front());
        pending_.pop_front();
        on_message_(std::move(payload));
    }
}

void TcpChannel::teardown() {
    if (!open_) return;
    open_ = false;
    pending_.clear();
    net_.simulation().trace().note(sim::TraceEvent::kChannelClose,
                                   net_.simulation().now(), self_.ep, peer_);
    if (on_message_) {
        // The handler may be the very function object we are executing
        // inside (a handler closing its own channel), so destroying it
        // synchronously would free a lambda mid-call. Defer the clear one
        // sim event; delivery is already cut off by open_ == false.
        net_.simulation().trace().note(sim::TraceEvent::kHandlerClear,
                                       net_.simulation().now(), self_.ep, peer_);
        auto self = shared_from_this();
        net_.simulation().after(sim::Duration::zero(),
                                [self]() { self->on_message_ = nullptr; });
    }
}

void TcpChannel::close() {
    if (!open_) return;
    // Half-close: this side stops sending and receiving, but data already
    // on the wire toward the peer still arrives (FIN does not beat it).
    auto remote = remote_.lock();
    teardown();
    if (remote) {
        // The peer learns of the close asynchronously (FIN). The FIN rides
        // the same kernel send path, so it cannot overtake replies that
        // were queued before the close.
        auto self = shared_from_this();
        self_.core->submit(net_.costs().tcp_side_cost(0), [self, remote]() {
            self->net_.fabric().send(
                self->self_.ep, self->peer_, 64, [remote]() {
                    // The FIN is processed by the peer's kernel in order
                    // with the data segments that preceded it.
                    remote->self_.core->submit(
                        remote->net_.costs().tcp_side_cost(0),
                        [remote]() { remote->teardown(); });
                });
        });
    }
}

} // namespace skv::net
