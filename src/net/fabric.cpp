#include "net/fabric.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace skv::net {

Fabric::Fabric(sim::Simulation& sim)
    : sim_(sim),
      c_sends_(obs_.counter_handle("sends")),
      c_bytes_(obs_.counter_handle("bytes")),
      c_delivers_(obs_.counter_handle("delivers")),
      c_drops_in_flight_(obs_.counter_handle("drops_in_flight")),
      c_fault_drops_(obs_.counter_handle("fault_drops")) {}

std::uint32_t Fabric::fabric_track(EndpointId ep) {
    Endpoint& e = endpoints_[ep];
    if (e.obs_track == UINT32_MAX) {
        e.obs_track = tracer_->track("fabric/" + e.name);
    }
    return e.obs_track;
}

sim::SimTime Fabric::Transmitter::reserve(sim::SimTime earliest, std::size_t bytes) {
    const auto ser = sim::Duration(
        static_cast<std::int64_t>(ns_per_byte * static_cast<double>(bytes)));
    const sim::SimTime start = std::max(earliest, busy_until);
    busy_until = start + ser;
    return busy_until;
}

EndpointId Fabric::add_host(const std::string& name, LinkParams link) {
    Endpoint ep;
    ep.name = name;
    ep.link = link;
    const double nspb = 8.0 / link.gbps;
    ep.egress.ns_per_byte = nspb;
    ep.ingress.ns_per_byte = nspb;
    endpoints_.push_back(std::move(ep));
    return static_cast<EndpointId>(endpoints_.size() - 1);
}

EndpointId Fabric::add_companion(EndpointId host, const std::string& name,
                                 CompanionParams params) {
    SKV_CHECK(host < endpoints_.size());
    SKV_CHECK(!endpoints_[host].is_companion, "companion must attach to a host");
    Endpoint ep;
    ep.name = name;
    ep.is_companion = true;
    ep.host = host;
    ep.companion = params;
    const double nspb = 8.0 / params.internal_gbps;
    ep.internal_out.ns_per_byte = nspb;
    ep.internal_in.ns_per_byte = nspb;
    endpoints_.push_back(std::move(ep));
    return static_cast<EndpointId>(endpoints_.size() - 1);
}

EndpointId Fabric::port_of(EndpointId ep) const {
    SKV_CHECK(ep < endpoints_.size());
    return endpoints_[ep].is_companion ? endpoints_[ep].host : ep;
}

bool Fabric::same_port(EndpointId a, EndpointId b) const {
    return port_of(a) == port_of(b) && a != b;
}

void Fabric::sever(EndpointId ep) {
    SKV_CHECK(ep < endpoints_.size());
    endpoints_[ep].severed = true;
    ++endpoints_[ep].sever_epoch;
    sim_.trace().note(sim::TraceEvent::kFabricSever, sim_.now(), ep);
}

void Fabric::restore(EndpointId ep) {
    SKV_CHECK(ep < endpoints_.size());
    endpoints_[ep].severed = false;
    sim_.trace().note(sim::TraceEvent::kFabricRestore, sim_.now(), ep);
}

bool Fabric::severed(EndpointId ep) const {
    SKV_CHECK(ep < endpoints_.size());
    return endpoints_[ep].severed;
}

const std::string& Fabric::name_of(EndpointId ep) const {
    SKV_CHECK(ep < endpoints_.size());
    return endpoints_[ep].name;
}

sim::SimTime Fabric::send_internal(Endpoint& host, Endpoint& nic, bool to_nic,
                                   std::size_t bytes) {
    // Host <-> its own SmartNIC: PCIe + NIC-switch path, no external link.
    // The message still traverses the full network stack on the SmartNIC,
    // which is why this latency is only "a little lower" than host-to-host
    // (paper Fig. 3).
    (void)host;
    Transmitter& tx = to_nic ? nic.internal_out : nic.internal_in;
    const sim::SimTime serialized = tx.reserve(sim_.now(), bytes);
    return serialized + nic.companion.internal_latency +
           nic.companion.nic_stack_overhead;
}

sim::SimTime Fabric::send_external(EndpointId from, EndpointId to,
                                   std::size_t bytes) {
    Endpoint& src = endpoints_[from];
    Endpoint& dst = endpoints_[to];
    Endpoint& src_port = endpoints_[port_of(from)];
    Endpoint& dst_port = endpoints_[port_of(to)];

    sim::Duration extra = sim::Duration::zero();
    if (src.is_companion) {
        // NIC-originated traffic: crosses the NIC switch out of the port and
        // pays the NIC-side stack.
        extra += src.companion.steering + src.companion.nic_stack_overhead;
    }
    if (dst.is_companion) {
        extra += dst.companion.steering + dst.companion.nic_stack_overhead;
    }

    // Serialize out of the source port, fly to the switch, forward, then
    // occupy the destination port's ingress (store-and-forward at the NIC).
    const sim::SimTime out_done = src_port.egress.reserve(sim_.now(), bytes);
    const sim::SimTime at_dst_port =
        out_done + src_port.link.propagation + switch_latency_ +
        dst_port.link.propagation;
    const sim::SimTime in_done = dst_port.ingress.reserve(at_dst_port, bytes);
    return in_done + extra;
}

FaultInjector& Fabric::faults() {
    if (!faults_) {
        faults_ = std::make_unique<FaultInjector>(sim_.fork_rng());
    }
    return *faults_;
}

void Fabric::schedule_delivery(EndpointId from, EndpointId to, sim::SimTime when,
                               std::function<void()> cb) {
    const std::uint64_t from_epoch = endpoints_[from].sever_epoch;
    const std::uint64_t to_epoch = endpoints_[to].sever_epoch;
    const bool traced = tracer_ != nullptr && tracer_->enabled();
    const sim::SimTime sent_at = sim_.now();
    const std::uint32_t track = traced ? fabric_track(from) : 0;
    sim_.at(when, [this, from, to, from_epoch, to_epoch, traced, sent_at,
                   track, cb = std::move(cb)]() mutable {
        // A message is lost if either endpoint is down right now, or was cut
        // (and possibly restored) while the message was on the wire.
        const Endpoint& src = endpoints_[from];
        const Endpoint& dst = endpoints_[to];
        if (src.severed || dst.severed || src.sever_epoch != from_epoch ||
            dst.sever_epoch != to_epoch) {
            ++dropped_in_flight_;
            c_drops_in_flight_.incr();
            sim_.trace().note(sim::TraceEvent::kFabricDropInFlight, sim_.now(),
                              from, to);
            return;
        }
        sim_.trace().note(sim::TraceEvent::kFabricDeliver, sim_.now(), from, to);
        c_delivers_.incr();
        if (traced && tracer_ != nullptr) {
            tracer_->complete(track, obs::Stage::kFabricTransfer, sent_at,
                              sim_.now());
        }
        cb();
    });
}

sim::SimTime Fabric::send(EndpointId from, EndpointId to, std::size_t bytes,
                          std::function<void()> on_delivered) {
    SKV_CHECK(from < endpoints_.size() && to < endpoints_.size());
    SKV_CHECK(from != to, "sending to self");

    ++messages_;
    bytes_ += bytes;
    c_sends_.incr();
    c_bytes_.incr(bytes);
    // Determinism audit: every send folds (kind, time, route) into the
    // trace digest, so two runs of the same seed can be compared hop by hop.
    sim_.trace().note(sim::TraceEvent::kFabricSend, sim_.now(), from, to);

    const bool dropped = endpoints_[from].severed || endpoints_[to].severed;

    sim::SimTime arrival;
    if (same_port(from, to)) {
        Endpoint& host = endpoints_[port_of(from)];
        Endpoint& nic = endpoints_[endpoints_[from].is_companion ? from : to];
        const bool to_nic = endpoints_[to].is_companion;
        arrival = send_internal(host, nic, to_nic, bytes);
    } else {
        arrival = send_external(from, to, bytes);
    }

    if (dropped || !on_delivered) return arrival;

    if (faults_) {
        auto decision = faults_->evaluate(from, to, sim_.now());
        if (decision.touched) {
            if (!decision.deliver) {
                c_fault_drops_.incr();
                sim_.trace().note(sim::TraceEvent::kFabricFaultDrop,
                                  sim_.now(), from, to);
                return arrival;
            }
            arrival = faults_->clamp_fifo(from, to, arrival + decision.delay);
            if (decision.duplicate) {
                const auto dup_at = faults_->clamp_fifo(
                    from, to, arrival + decision.dup_delay);
                schedule_delivery(from, to, dup_at, on_delivered);
            }
        }
    }

    schedule_delivery(from, to, arrival, std::move(on_delivered));
    return arrival;
}

} // namespace skv::net
