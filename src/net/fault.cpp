#include "net/fault.hpp"

#include <algorithm>

namespace skv::net {

void FaultInjector::set_pair(EndpointId from, EndpointId to, FaultSpec spec) {
    pairs_[{from, to}] = spec;
}

void FaultInjector::set_link(EndpointId a, EndpointId b, FaultSpec spec) {
    set_pair(a, b, spec);
    set_pair(b, a, spec);
}

void FaultInjector::set_endpoint(EndpointId ep, FaultSpec spec) {
    endpoints_[ep] = spec;
}

void FaultInjector::clear_pair(EndpointId from, EndpointId to) {
    pairs_.erase({from, to});
}

void FaultInjector::clear_link(EndpointId a, EndpointId b) {
    clear_pair(a, b);
    clear_pair(b, a);
}

void FaultInjector::clear_endpoint(EndpointId ep) { endpoints_.erase(ep); }

void FaultInjector::clear() {
    pairs_.clear();
    endpoints_.clear();
}

void FaultInjector::apply(const FaultSpec& spec, sim::SimTime now, Decision* d) {
    if (!spec.active()) return;
    d->touched = true;
    if (spec.blocked) {
        d->deliver = false;
        stats_.incr("partition_drops");
        return;
    }
    if (spec.flap_period.ns() > 0 && spec.flap_down.ns() > 0) {
        std::int64_t in_period =
            (now.ns() - spec.flap_phase.ns()) % spec.flap_period.ns();
        if (in_period < 0) in_period += spec.flap_period.ns();
        if (in_period < spec.flap_down.ns()) {
            d->deliver = false;
            stats_.incr("flap_drops");
            return;
        }
    }
    if (spec.drop_prob > 0 && rng_.next_bool(spec.drop_prob)) {
        d->deliver = false;
        stats_.incr("drops");
        return;
    }
    if (spec.jitter_prob > 0 && spec.jitter_mean.ns() > 0 &&
        rng_.next_bool(spec.jitter_prob)) {
        d->delay += sim::Duration(static_cast<std::int64_t>(
            rng_.next_exponential(static_cast<double>(spec.jitter_mean.ns()))));
        stats_.incr("delays");
    }
    if (spec.dup_prob > 0 && rng_.next_bool(spec.dup_prob)) {
        d->duplicate = true;
        // The copy trails the original by an independent exponential gap (a
        // retransmitted / switch-duplicated frame arrives close behind).
        const double mean = spec.jitter_mean.ns() > 0
                                ? static_cast<double>(spec.jitter_mean.ns())
                                : 1'000.0;
        d->dup_delay += sim::Duration(
            static_cast<std::int64_t>(rng_.next_exponential(mean)) + 1);
        stats_.incr("dups");
    }
}

FaultInjector::Decision FaultInjector::evaluate(EndpointId from, EndpointId to,
                                                sim::SimTime now) {
    Decision d;
    if (auto it = pairs_.find({from, to}); it != pairs_.end()) {
        apply(it->second, now, &d);
    }
    if (auto it = endpoints_.find(from); d.deliver && it != endpoints_.end()) {
        apply(it->second, now, &d);
    }
    if (auto it = endpoints_.find(to); d.deliver && it != endpoints_.end()) {
        apply(it->second, now, &d);
    }
    return d;
}

sim::SimTime FaultInjector::clamp_fifo(EndpointId from, EndpointId to,
                                       sim::SimTime arrival) {
    sim::SimTime& last = last_arrival_[{from, to}];
    arrival = std::max(arrival, last);
    last = arrival;
    return arrival;
}

} // namespace skv::net
