#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cpu/core.hpp"
#include "net/fabric.hpp"

namespace skv::net {

/// A node as seen by the transport layers: its fabric endpoint plus the
/// core that pays transport CPU costs (syscalls, WR posts) on that node.
struct NodeRef {
    EndpointId ep = kInvalidEndpoint;
    cpu::Core* core = nullptr;
    [[nodiscard]] bool valid() const { return ep != kInvalidEndpoint && core != nullptr; }
};

/// A bidirectional, message-oriented pipe between two nodes. Implemented
/// by the kernel-TCP model (net::TcpNetwork) and by the RDMA ring-buffer
/// messenger (rdma::RingChannel). Servers and clients are written against
/// this interface so the same Host-KV code runs over either transport,
/// mirroring how SKV swaps Redis's TCP layer for verbs.
///
/// Delivery is asynchronous: send() returns immediately after charging the
/// local transport cost; the peer's message handler fires when the payload
/// has crossed the simulated network and the peer paid its receive cost.
///
/// Ownership model (see DESIGN.md "Ownership model"): the accepting or
/// connecting component owns the channel via this shared_ptr. The message
/// handler installed with set_on_message() is *stored inside the channel*,
/// so a handler must never capture an owning shared_ptr to any object that
/// (transitively) owns the channel — that is a reference cycle and the
/// whole connection graph outlives the link. Capture a weak_ptr and lock it
/// per message instead (tools/simlint2 reports violations as [cycle]).
/// close() additionally clears the installed handler — deferred one sim
/// event so a handler may close its own channel mid-delivery — which makes
/// teardown safe even where a cycle slipped through.
class Channel {
public:
    using MessageHandler = std::function<void(std::string payload)>;

    Channel() { ++live_count_; }
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;
    virtual ~Channel() { --live_count_; }

    /// Number of channel objects currently alive (all transports, both
    /// ends, including reliable wrappers). The lifetime regression test
    /// asserts this drops when links sever — while the sim is running, not
    /// at process exit.
    [[nodiscard]] static long live_count() { return live_count_; }

    /// Queue `payload` for transmission to the peer.
    virtual void send(std::string payload) = 0;

    /// Install the receive handler. Messages arriving before a handler is
    /// installed are buffered and delivered on installation.
    virtual void set_on_message(MessageHandler handler) = 0;

    /// Tear down this side of the channel. In-flight messages are dropped.
    virtual void close() = 0;

    [[nodiscard]] virtual bool open() const = 0;

    /// Fabric endpoint of the remote side (for diagnostics).
    [[nodiscard]] virtual EndpointId peer() const = 0;

    /// Bytes queued locally but not yet accepted by the transport (send
    /// backlog). Used by replication-lag accounting.
    [[nodiscard]] virtual std::size_t backlog_bytes() const = 0;

    /// Deterministic per-connection id, identical on both ends of a pair
    /// (assigned at pair creation by the connection manager / TCP
    /// handshake; reliable wrappers forward the inner channel's id). The
    /// observability tracer correlates request stages across client and
    /// server by this id. 0 means "not assigned".
    [[nodiscard]] virtual std::uint64_t flow_id() const { return flow_id_; }
    void set_flow_id(std::uint64_t id) { flow_id_ = id; }

private:
    std::uint64_t flow_id_ = 0;
    // The simulation is single-threaded; a plain counter is deterministic.
    inline static long live_count_ = 0;
};

using ChannelPtr = std::shared_ptr<Channel>;

} // namespace skv::net
