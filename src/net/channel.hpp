#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cpu/core.hpp"
#include "net/fabric.hpp"

namespace skv::net {

/// A node as seen by the transport layers: its fabric endpoint plus the
/// core that pays transport CPU costs (syscalls, WR posts) on that node.
struct NodeRef {
    EndpointId ep = kInvalidEndpoint;
    cpu::Core* core = nullptr;
    [[nodiscard]] bool valid() const { return ep != kInvalidEndpoint && core != nullptr; }
};

/// A bidirectional, message-oriented pipe between two nodes. Implemented
/// by the kernel-TCP model (net::TcpNetwork) and by the RDMA ring-buffer
/// messenger (rdma::RingChannel). Servers and clients are written against
/// this interface so the same Host-KV code runs over either transport,
/// mirroring how SKV swaps Redis's TCP layer for verbs.
///
/// Delivery is asynchronous: send() returns immediately after charging the
/// local transport cost; the peer's message handler fires when the payload
/// has crossed the simulated network and the peer paid its receive cost.
class Channel {
public:
    using MessageHandler = std::function<void(std::string payload)>;

    virtual ~Channel() = default;

    /// Queue `payload` for transmission to the peer.
    virtual void send(std::string payload) = 0;

    /// Install the receive handler. Messages arriving before a handler is
    /// installed are buffered and delivered on installation.
    virtual void set_on_message(MessageHandler handler) = 0;

    /// Tear down this side of the channel. In-flight messages are dropped.
    virtual void close() = 0;

    [[nodiscard]] virtual bool open() const = 0;

    /// Fabric endpoint of the remote side (for diagnostics).
    [[nodiscard]] virtual EndpointId peer() const = 0;

    /// Bytes queued locally but not yet accepted by the transport (send
    /// backlog). Used by replication-lag accounting.
    [[nodiscard]] virtual std::size_t backlog_bytes() const = 0;
};

using ChannelPtr = std::shared_ptr<Channel>;

} // namespace skv::net
