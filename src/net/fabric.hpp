#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace skv::net {

/// Identifies one attachment point on the fabric (a host NIC port or the
/// SmartNIC's own endpoint behind a host port). (The underlying type lives
/// in net/fault.hpp so the injector does not depend on this header.)
inline constexpr EndpointId kInvalidEndpoint = UINT32_MAX;

/// Physical parameters of a host link to the ToR switch.
struct LinkParams {
    /// One-way propagation delay host->switch (cable + PHY).
    sim::Duration propagation{sim::nanoseconds(250)};
    /// Line rate in Gbit/s (100 for the paper's ConnectX-5 / SN2100).
    double gbps = 100.0;
};

/// Parameters for an off-path SmartNIC companion endpoint that sits behind
/// a host's physical port (BlueField model, paper Fig. 2).
struct CompanionParams {
    /// Host <-> SmartNIC internal path latency (PCIe + NIC switch, one way).
    sim::Duration internal_latency{sim::nanoseconds(330)};
    /// Internal path bandwidth in Gbit/s (PCIe gen4 x16 ballpark).
    double internal_gbps = 128.0;
    /// Extra per-message processing on the SmartNIC side: the full network
    /// stack running on the NIC (paper §II-A2: "communication between the
    /// SmartNIC and the host is inefficient due to the complete network
    /// stack on SmartNIC").
    sim::Duration nic_stack_overhead{sim::nanoseconds(380)};
    /// NIC-switch steering cost for external traffic directed to the NIC
    /// cores instead of the host.
    sim::Duration steering{sim::nanoseconds(120)};
};

/// A single-switch RoCE fabric: every host connects to one ToR switch.
/// The fabric models propagation latency, per-link serialization at the
/// line rate (so large values congest), switch forwarding latency, and
/// off-path SmartNIC companion endpoints that share their host's physical
/// port (so host traffic and NIC-originated replication traffic contend
/// for the same 100 Gb/s — which is what makes the Fig. 12 value-size
/// sweep honest).
///
/// The fabric transports *timing only*: payloads live in the layers above
/// (verbs memory regions); a send is a byte count plus a delivery callback.
class Fabric {
public:
    explicit Fabric(sim::Simulation& sim);

    /// Forwarding latency of the ToR switch (cut-through).
    void set_switch_latency(sim::Duration d) { switch_latency_ = d; }

    /// Attach a host NIC port with a dedicated link to the switch.
    EndpointId add_host(const std::string& name, LinkParams link = {});

    /// Attach an off-path SmartNIC endpoint behind `host`'s port.
    EndpointId add_companion(EndpointId host, const std::string& name,
                             CompanionParams params = {});

    /// Send `bytes` from one endpoint to another. `on_delivered` fires when
    /// the last byte arrives at the destination endpoint. Returns the
    /// computed arrival time.
    sim::SimTime send(EndpointId from, EndpointId to, std::size_t bytes,
                      std::function<void()> on_delivered);

    /// Sever / restore an endpoint. Messages to or from a severed endpoint
    /// are silently dropped (the delivery callback never fires), modelling
    /// a crashed node: RDMA gives no immediate error, requests just time
    /// out, which is exactly why SKV needs its own failure detector.
    /// Severing also kills messages already in flight: a frame that left
    /// the wire before the cut must not materialize after restore().
    void sever(EndpointId ep);
    void restore(EndpointId ep);
    [[nodiscard]] bool severed(EndpointId ep) const;

    /// Lazily created fault-injection plans consulted by send(). Fault-free
    /// simulations never call this, so they draw nothing from the seed
    /// stream and stay bit-identical with pre-fault builds.
    FaultInjector& faults();
    [[nodiscard]] bool has_faults() const { return faults_ != nullptr; }

    /// Messages that were in flight when one of their endpoints was severed
    /// (their delivery callback was suppressed at delivery time).
    [[nodiscard]] std::uint64_t dropped_in_flight() const {
        return dropped_in_flight_;
    }

    [[nodiscard]] const std::string& name_of(EndpointId ep) const;
    [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
    [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

    /// True when `ep` is a SmartNIC companion endpoint.
    [[nodiscard]] bool is_companion(EndpointId ep) const {
        return endpoints_.at(ep).is_companion;
    }

    /// Fabric-level typed metrics (sends/delivers/drops, hot-path counters
    /// pre-resolved to obs handles at construction).
    [[nodiscard]] obs::Registry& obs() { return obs_; }
    /// Wire the observability tracer; when enabled, every delivery records
    /// a kFabricTransfer span on the sending endpoint's track. The tracer
    /// only observes — it cannot change arrival times or event order.
    void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

    /// True when `a` and `b` share one physical port (a host and its own
    /// companion SmartNIC): their traffic takes the internal PCIe path.
    [[nodiscard]] bool same_port(EndpointId a, EndpointId b) const;

private:
    /// Models occupancy of one direction of a link: serialization of
    /// back-to-back messages queues behind earlier ones.
    struct Transmitter {
        sim::SimTime busy_until = sim::SimTime::zero();
        double ns_per_byte = 0.08; // 100 Gb/s

        /// Reserve the transmitter for `bytes` starting no earlier than
        /// `earliest`; returns the time the last byte has been serialized.
        sim::SimTime reserve(sim::SimTime earliest, std::size_t bytes);
    };

    struct Endpoint {
        std::string name;
        bool is_companion = false;
        EndpointId host = kInvalidEndpoint; // for companions
        LinkParams link;                    // for hosts
        CompanionParams companion;          // for companions
        // Host endpoints own the physical-port transmitters. Companions
        // share their host's and add internal-path transmitters.
        Transmitter egress;
        Transmitter ingress;
        Transmitter internal_out; // host->NIC direction (owned by companion)
        Transmitter internal_in;  // NIC->host direction (owned by companion)
        bool severed = false;
        // Bumped on every sever(): deliveries scheduled under an older epoch
        // are dead even if the endpoint has been restored since.
        std::uint64_t sever_epoch = 0;
        // Lazily registered tracer track ("fabric/<name>").
        std::uint32_t obs_track = UINT32_MAX;
    };

    /// Resolve which physical port (host endpoint index) carries external
    /// traffic for `ep`.
    [[nodiscard]] EndpointId port_of(EndpointId ep) const;

    sim::SimTime send_internal(Endpoint& host, Endpoint& nic, bool to_nic,
                               std::size_t bytes);
    sim::SimTime send_external(EndpointId from, EndpointId to, std::size_t bytes);

    /// Schedule `cb` at `when`, re-checking at delivery time that neither
    /// endpoint was severed in between (in-flight kill).
    void schedule_delivery(EndpointId from, EndpointId to, sim::SimTime when,
                           std::function<void()> cb);

    /// Tracer track for `ep`, registered on first use.
    [[nodiscard]] std::uint32_t fabric_track(EndpointId ep);

    sim::Simulation& sim_;
    sim::Duration switch_latency_{sim::nanoseconds(300)};
    std::vector<Endpoint> endpoints_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t dropped_in_flight_ = 0;
    std::unique_ptr<FaultInjector> faults_;
    obs::Registry obs_{"fabric"};
    obs::Counter c_sends_;
    obs::Counter c_bytes_;
    obs::Counter c_delivers_;
    obs::Counter c_drops_in_flight_;
    obs::Counter c_fault_drops_;
    obs::Tracer* tracer_ = nullptr;
};

} // namespace skv::net
