#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "cpu/cost_model.hpp"
#include "net/channel.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace skv::net {

class TcpChannel;

/// The kernel TCP path model. Each send()/recv() pays a syscall, protocol
/// processing and per-byte copy cost on the node's core, on top of the
/// fabric's propagation/serialization — this is the "hundreds of
/// microseconds under load" path the paper replaces with RDMA.
class TcpNetwork {
public:
    TcpNetwork(sim::Simulation& sim, Fabric& fabric, const cpu::CostModel& costs);

    using AcceptHandler = std::function<void(ChannelPtr)>;
    using ConnectHandler = std::function<void(ChannelPtr)>;

    /// Bind an accept handler to (endpoint, port).
    void listen(NodeRef node, std::uint16_t port, AcceptHandler on_accept);
    void stop_listening(EndpointId ep, std::uint16_t port);

    /// Three-way handshake, then both sides receive their channel ends.
    void connect(NodeRef from, EndpointId to, std::uint16_t port,
                 ConnectHandler on_connected);

    [[nodiscard]] sim::Simulation& simulation() { return sim_; }
    [[nodiscard]] Fabric& fabric() { return fabric_; }
    [[nodiscard]] const cpu::CostModel& costs() const { return costs_; }

private:
    friend class TcpChannel;

    struct ListenerKey {
        EndpointId ep;
        std::uint16_t port;
        bool operator<(const ListenerKey& o) const {
            return ep != o.ep ? ep < o.ep : port < o.port;
        }
    };

    struct Listener {
        NodeRef node;
        AcceptHandler on_accept;
    };

    sim::Simulation& sim_;
    Fabric& fabric_;
    const cpu::CostModel& costs_;
    std::map<ListenerKey, Listener> listeners_;
    sim::Rng rng_;
    std::uint64_t next_flow_ = 0; // deterministic flow-id source
};

/// One side of an established TCP connection.
class TcpChannel final : public Channel,
                         public std::enable_shared_from_this<TcpChannel> {
public:
    TcpChannel(TcpNetwork& net, NodeRef self, EndpointId peer);

    void send(std::string payload) override;
    void set_on_message(MessageHandler handler) override;
    void close() override;
    [[nodiscard]] bool open() const override { return open_; }
    [[nodiscard]] EndpointId peer() const override { return peer_; }
    [[nodiscard]] std::size_t backlog_bytes() const override { return 0; }

private:
    friend class TcpNetwork;

    void wire(std::shared_ptr<TcpChannel> remote) { remote_ = std::move(remote); }
    void deliver(std::string payload);
    /// Local half of close(): stop delivery, release buffered payloads and
    /// (deferred) the installed handler. Runs on explicit close and on FIN
    /// receipt so both ends release their object graphs.
    void teardown();

    TcpNetwork& net_;
    NodeRef self_;
    EndpointId peer_;
    std::weak_ptr<TcpChannel> remote_;
    MessageHandler on_message_;
    std::deque<std::string> pending_; // arrived before a handler was set
    bool open_ = true;
    sim::Rng rng_;
};

} // namespace skv::net
