#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace skv::net {

using EndpointId = std::uint32_t;

/// One injectable fault profile. Attached to a directed endpoint pair or to
/// a single endpoint (where it applies to all traffic touching it), it
/// describes how messages crossing the fabric misbehave. All randomness is
/// drawn from the injector's forked RNG, so a chaos run is bit-reproducible
/// from the simulation seed.
struct FaultSpec {
    /// Probability that a message is silently dropped.
    double drop_prob = 0.0;
    /// Probability that a delivered message is delivered twice.
    double dup_prob = 0.0;
    /// Probability that a delivered message is delayed beyond its modelled
    /// arrival time; the extra delay is exponential with mean `jitter_mean`.
    double jitter_prob = 0.0;
    sim::Duration jitter_mean{sim::Duration::zero()};
    /// Hard partition: every message matching this spec is dropped. On a
    /// directed pair this models an asymmetric (one-way) partition.
    bool blocked = false;
    /// Timed link flapping: the link is down for the first `flap_down` of
    /// every `flap_period`, starting at `flap_phase`. Zero period disables.
    sim::Duration flap_period{sim::Duration::zero()};
    sim::Duration flap_down{sim::Duration::zero()};
    sim::Duration flap_phase{sim::Duration::zero()};

    [[nodiscard]] bool active() const {
        return drop_prob > 0 || dup_prob > 0 || jitter_prob > 0 || blocked ||
               flap_period.ns() > 0;
    }
};

/// Consulted by Fabric::send() for every message. Owns the fault plans, a
/// private RNG stream and the counters for injected faults. Created lazily
/// by Fabric::faults() so fault-free simulations draw nothing from the seed
/// stream and stay bit-identical with pre-fault builds.
class FaultInjector {
public:
    explicit FaultInjector(sim::Rng rng) : rng_(rng) {}

    /// Attach `spec` to the directed pair from -> to (replaces any previous).
    void set_pair(EndpointId from, EndpointId to, FaultSpec spec);
    /// Attach `spec` to both directions between a and b.
    void set_link(EndpointId a, EndpointId b, FaultSpec spec);
    /// Attach `spec` to every message sent to or from `ep`.
    void set_endpoint(EndpointId ep, FaultSpec spec);
    void clear_pair(EndpointId from, EndpointId to);
    void clear_link(EndpointId a, EndpointId b);
    void clear_endpoint(EndpointId ep);
    void clear();

    /// Verdict for one message.
    struct Decision {
        bool touched = false;   // some spec matched this pair
        bool deliver = true;
        bool duplicate = false;
        sim::Duration delay{sim::Duration::zero()};
        sim::Duration dup_delay{sim::Duration::zero()};
    };

    /// Evaluate the plans for a message from -> to sent at `now`.
    Decision evaluate(EndpointId from, EndpointId to, sim::SimTime now);

    /// Links stay FIFO even under jitter: clamp `arrival` so it is not
    /// earlier than the last delivery scheduled on this directed pair.
    sim::SimTime clamp_fifo(EndpointId from, EndpointId to, sim::SimTime arrival);

    [[nodiscard]] sim::StatsRegistry& stats() { return stats_; }
    [[nodiscard]] const sim::StatsRegistry& stats() const { return stats_; }

private:
    void apply(const FaultSpec& spec, sim::SimTime now, Decision* d);

    std::map<std::pair<EndpointId, EndpointId>, FaultSpec> pairs_;
    std::map<EndpointId, FaultSpec> endpoints_;
    std::map<std::pair<EndpointId, EndpointId>, sim::SimTime> last_arrival_;
    sim::Rng rng_;
    sim::StatsRegistry stats_;
};

} // namespace skv::net
