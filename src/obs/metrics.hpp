#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "sim/histogram.hpp"
#include "sim/time.hpp"

namespace skv::obs {

class Registry;

/// Pre-resolved counter handle: incrementing is one pointer dereference and
/// an add, no string lookup. Handles stay valid for the life of the owning
/// Registry (cells live in a deque and never move). A default-constructed
/// handle is inert: incr() on it is a no-op, so components can be
/// instrumented unconditionally and wired to a registry lazily.
class Counter {
public:
    Counter() = default;
    void incr(std::uint64_t delta = 1) const {
        if (cell_ != nullptr) *cell_ += delta;
    }
    [[nodiscard]] std::uint64_t value() const {
        return cell_ != nullptr ? *cell_ : 0;
    }
    [[nodiscard]] explicit operator bool() const { return cell_ != nullptr; }

private:
    friend class Registry;
    explicit Counter(std::uint64_t* cell) : cell_(cell) {}
    std::uint64_t* cell_ = nullptr;
};

/// Pre-resolved gauge handle (signed, last-write-wins).
class Gauge {
public:
    Gauge() = default;
    void set(std::int64_t v) const {
        if (cell_ != nullptr) *cell_ = v;
    }
    void add(std::int64_t delta) const {
        if (cell_ != nullptr) *cell_ += delta;
    }
    [[nodiscard]] std::int64_t value() const {
        return cell_ != nullptr ? *cell_ : 0;
    }
    [[nodiscard]] explicit operator bool() const { return cell_ != nullptr; }

private:
    friend class Registry;
    explicit Gauge(std::int64_t* cell) : cell_(cell) {}
    std::int64_t* cell_ = nullptr;
};

/// Pre-resolved latency-histogram handle. record() feeds the log-linear
/// sim::LatencyHistogram owned by the Registry.
class Timer {
public:
    Timer() = default;
    void record(sim::Duration d) const {
        if (hist_ != nullptr) hist_->record(d);
    }
    void record_ns(std::int64_t ns) const {
        if (hist_ != nullptr) hist_->record_ns(ns);
    }
    [[nodiscard]] const sim::LatencyHistogram* histogram() const { return hist_; }
    [[nodiscard]] explicit operator bool() const { return hist_ != nullptr; }

private:
    friend class Registry;
    explicit Timer(sim::LatencyHistogram* hist) : hist_(hist) {}
    sim::LatencyHistogram* hist_ = nullptr;
};

/// Point-in-time copy of a Registry, used for measurement-window deltas and
/// by the exporters. Maps keep iteration (and therefore export) order
/// deterministic.
struct Snapshot {
    struct TimerStats {
        std::uint64_t count = 0;
        double sum_ns = 0.0;
        std::int64_t p50_ns = 0;
        std::int64_t p99_ns = 0;
        std::int64_t p999_ns = 0;
        std::int64_t max_ns = 0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, TimerStats> timers;

    /// Per-window delta: counters and timer counts/sums subtract `older`
    /// (missing-in-older keys keep their full value); gauges and timer
    /// percentiles are point-in-time and keep the newer value.
    [[nodiscard]] Snapshot delta_since(const Snapshot& older) const;
};

/// Per-node metric registry. Two faces:
///
///  - Typed handles (counter_handle/gauge_handle/timer_handle), resolved
///    once at wiring time so hot paths pay an array index, not a
///    std::map<std::string,...> lookup per event.
///  - A string API mirroring sim::StatsRegistry (incr/set_gauge/counter/
///    gauge/format/clear) so existing call sites and golden-output tests
///    keep working after components swap their StatsRegistry member for a
///    Registry. Both faces address the same cells.
///
/// Iteration anywhere in this class is over std::map — deterministic by
/// construction, which the byte-identical export guarantee relies on.
class Registry {
public:
    Registry() = default;
    explicit Registry(std::string scope) : scope_(std::move(scope)) {}

    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    // --- typed pre-resolved handles (resolve once, use on the hot path) ---
    Counter counter_handle(const std::string& name);
    Gauge gauge_handle(const std::string& name);
    Timer timer_handle(const std::string& name);

    // --- sim::StatsRegistry-compatible string API ---
    void incr(const std::string& name, std::uint64_t delta = 1);
    void set_gauge(const std::string& name, std::int64_t value);
    [[nodiscard]] std::uint64_t counter(const std::string& name) const;
    [[nodiscard]] std::int64_t gauge(const std::string& name) const;
    /// "name=value\n" lines: counters first, then gauges, each sorted by
    /// name — byte-compatible with sim::StatsRegistry::format(). Timers are
    /// deliberately excluded (StatsRegistry had none; the chaos determinism
    /// fingerprint folds this string in).
    [[nodiscard]] std::string format() const;
    /// Zero every cell. Handles remain valid.
    void clear();

    [[nodiscard]] const std::string& scope() const { return scope_; }
    [[nodiscard]] Snapshot snapshot() const;

private:
    std::string scope_;
    // Cells live in deques so handle pointers survive growth.
    std::deque<std::uint64_t> counter_cells_;
    std::deque<std::int64_t> gauge_cells_;
    std::deque<sim::LatencyHistogram> timer_cells_;
    std::map<std::string, std::size_t> counter_index_;
    std::map<std::string, std::size_t> gauge_index_;
    std::map<std::string, std::size_t> timer_index_;
};

} // namespace skv::obs
