#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/simulation.hpp"

namespace skv::obs {

/// Command-lifecycle span taxonomy (DESIGN.md §11). Stages on the critical
/// path (kRdmaWrite, kMasterApply, kReply) tile the client-observed
/// end-to-end latency exactly; replication stages overlap the reply because
/// SKV acknowledges the client before the fan-out completes.
enum class Stage : std::uint8_t {
    kClientE2e = 0,   // client issue -> reply parsed at the client
    kRdmaWrite,       // client issue -> command entry on the master
    kCqWakeup,        // completion-channel fire -> CQ drain task runs
    kMasterApply,     // command entry -> reply handed to the transport
    kReply,           // reply handed to transport -> reply parsed at client
    kOffloadRequest,  // master propagate -> Nic-KV fan-out parse
    kNicFanout,       // Nic-KV fan-out parse -> repl stream applied on a slave
    kSlaveAck,        // master propagate -> first covering slave ack heard
    kFabricTransfer,  // fabric send accepted -> delivery callback fires
    kCount
};

[[nodiscard]] const char* stage_name(Stage s);

/// A completed span. `id` is derived from seeded deterministic state (sim
/// seed, track, stage, per-tracer sequence number folded through FNV-1a) —
/// no wall clock, no global counters, so ids are bit-identical across
/// same-seed runs and the tracer never perturbs the sim::Trace digest.
struct Span {
    std::uint64_t id = 0;
    std::uint32_t track = 0;
    Stage stage = Stage::kClientE2e;
    sim::SimTime begin;
    sim::SimTime end;
};

/// Running (sum, count) per stage. Kept alongside the per-stage histograms
/// because measurement windows need exact subtractable sums: the
/// workload runner snapshots these at window start/end and the deltas give
/// matched per-request populations for the latency breakdown.
struct StageAccum {
    std::int64_t sum_ns = 0;
    std::uint64_t count = 0;
};

/// Deterministic sim-time span recorder for the SKV request path.
///
/// Determinism contract (asserted by obs_determinism_test): the tracer only
/// *observes* — it never schedules events, never touches an Rng, and never
/// calls sim::Trace::note(), so enabling or disabling it cannot change the
/// trace-digest audit. All internal maps are ordered; exports are
/// byte-identical across same-seed runs.
///
/// Correlation is by id, not by callback plumbing:
///  - request path: every client connection carries a deterministic
///    flow id (net::Channel::flow_id, assigned at pair creation); the
///    client stamps issue/complete, the server stamps recv/done, and a
///    fully-stamped flow contributes one sample to each critical-path
///    stage — the stages tile end-to-end latency exactly.
///  - replication: keyed by the master backlog start offset, which rides
///    in the kReplData/kAck node messages end to end.
class Tracer {
public:
    explicit Tracer(sim::Simulation& sim, std::size_t max_spans = 1 << 16)
        : sim_(sim), max_spans_(max_spans) {}

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    void set_enabled(bool on) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Register (or look up) a named track — one chrome-trace row. Assignment
    /// order is sim-event order, which is deterministic.
    std::uint32_t track(const std::string& name);

    /// Record a completed span directly (used for kCqWakeup/kFabricTransfer
    /// where begin/end are both known at one site).
    void complete(std::uint32_t track, Stage stage, sim::SimTime begin,
                  sim::SimTime end);

    // --- per-request flow correlation (critical path) ---
    void flow_issue(std::uint64_t flow, std::uint32_t client_track);
    void flow_server_recv(std::uint64_t flow, std::uint32_t server_track);
    void flow_server_done(std::uint64_t flow);
    void flow_complete(std::uint64_t flow);

    // --- async replication correlation, keyed by backlog start offset ---
    void repl_propagate(std::int64_t offset, std::int64_t end_offset,
                        std::uint32_t master_track);
    void repl_fanout(std::int64_t offset, std::uint32_t nic_track);
    void repl_slave_apply(std::int64_t offset, std::uint32_t slave_track);
    void repl_ack(std::int64_t cum_offset);

    [[nodiscard]] const StageAccum& stage_accum(Stage s) const {
        return accums_[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] const sim::LatencyHistogram& stage_hist(Stage s) const {
        return hists_[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
    [[nodiscard]] const std::vector<std::string>& track_names() const {
        return track_names_;
    }
    [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_spans_; }
    [[nodiscard]] sim::Simulation& sim() { return sim_; }

    /// Drop recorded spans, stage stats and open correlation state. Track
    /// registrations survive (they are topology, not data).
    void clear();

private:
    struct FlowState {
        sim::SimTime issue;
        sim::SimTime recv;
        sim::SimTime done;
        std::uint32_t client_track = 0;
        std::uint32_t server_track = 0;
        std::uint8_t have = 0; // bit0 issue, bit1 recv, bit2 done
    };

    struct ReplState {
        sim::SimTime propagate;
        sim::SimTime fanout;
        std::int64_t end_offset = 0;
        std::uint32_t master_track = 0;
        std::uint32_t nic_track = 0;
        bool have_fanout = false;
    };

    static constexpr std::size_t kMaxFlows = 1 << 16;
    static constexpr std::size_t kMaxRepl = 1 << 13;

    [[nodiscard]] std::uint64_t span_id(std::uint32_t track, Stage stage);
    void push_span(std::uint32_t track, Stage stage, sim::SimTime begin,
                   sim::SimTime end);
    void accumulate(Stage stage, sim::Duration d);

    sim::Simulation& sim_;
    std::size_t max_spans_;
    bool enabled_ = false;
    std::uint64_t seq_ = 0;
    std::uint64_t dropped_spans_ = 0;
    std::vector<Span> spans_;
    std::vector<std::string> track_names_;
    std::map<std::string, std::uint32_t> track_index_;
    std::array<StageAccum, static_cast<std::size_t>(Stage::kCount)> accums_{};
    std::array<sim::LatencyHistogram, static_cast<std::size_t>(Stage::kCount)>
        hists_{};
    std::map<std::uint64_t, FlowState> flows_;
    std::map<std::int64_t, ReplState> repl_;
};

} // namespace skv::obs
