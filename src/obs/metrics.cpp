#include "obs/metrics.hpp"

namespace skv::obs {

Counter Registry::counter_handle(const std::string& name) {
    auto it = counter_index_.find(name);
    if (it == counter_index_.end()) {
        counter_cells_.push_back(0);
        it = counter_index_.emplace(name, counter_cells_.size() - 1).first;
    }
    return Counter(&counter_cells_[it->second]);
}

Gauge Registry::gauge_handle(const std::string& name) {
    auto it = gauge_index_.find(name);
    if (it == gauge_index_.end()) {
        gauge_cells_.push_back(0);
        it = gauge_index_.emplace(name, gauge_cells_.size() - 1).first;
    }
    return Gauge(&gauge_cells_[it->second]);
}

Timer Registry::timer_handle(const std::string& name) {
    auto it = timer_index_.find(name);
    if (it == timer_index_.end()) {
        timer_cells_.emplace_back();
        it = timer_index_.emplace(name, timer_cells_.size() - 1).first;
    }
    return Timer(&timer_cells_[it->second]);
}

void Registry::incr(const std::string& name, std::uint64_t delta) {
    counter_handle(name).incr(delta);
}

void Registry::set_gauge(const std::string& name, std::int64_t value) {
    gauge_handle(name).set(value);
}

std::uint64_t Registry::counter(const std::string& name) const {
    const auto it = counter_index_.find(name);
    return it != counter_index_.end() ? counter_cells_[it->second] : 0;
}

std::int64_t Registry::gauge(const std::string& name) const {
    const auto it = gauge_index_.find(name);
    return it != gauge_index_.end() ? gauge_cells_[it->second] : 0;
}

std::string Registry::format() const {
    std::string out;
    for (const auto& [k, idx] : counter_index_) {
        out += k;
        out += '=';
        out += std::to_string(counter_cells_[idx]);
        out += '\n';
    }
    for (const auto& [k, idx] : gauge_index_) {
        out += k;
        out += '=';
        out += std::to_string(gauge_cells_[idx]);
        out += '\n';
    }
    return out;
}

void Registry::clear() {
    for (auto& c : counter_cells_) c = 0;
    for (auto& g : gauge_cells_) g = 0;
    for (auto& t : timer_cells_) t.clear();
}

Snapshot Registry::snapshot() const {
    Snapshot s;
    for (const auto& [k, idx] : counter_index_) s.counters[k] = counter_cells_[idx];
    for (const auto& [k, idx] : gauge_index_) s.gauges[k] = gauge_cells_[idx];
    for (const auto& [k, idx] : timer_index_) {
        const auto& h = timer_cells_[idx];
        Snapshot::TimerStats t;
        t.count = h.count();
        t.sum_ns = h.mean_ns() * static_cast<double>(h.count());
        t.p50_ns = h.p50_ns();
        t.p99_ns = h.p99_ns();
        t.p999_ns = h.p999_ns();
        t.max_ns = h.max_ns();
        s.timers[k] = t;
    }
    return s;
}

Snapshot Snapshot::delta_since(const Snapshot& older) const {
    Snapshot d;
    for (const auto& [k, v] : counters) {
        const auto it = older.counters.find(k);
        const std::uint64_t base = it != older.counters.end() ? it->second : 0;
        d.counters[k] = v >= base ? v - base : 0;
    }
    d.gauges = gauges;
    for (const auto& [k, v] : timers) {
        const auto it = older.timers.find(k);
        TimerStats t = v;
        if (it != older.timers.end()) {
            t.count = v.count >= it->second.count ? v.count - it->second.count : 0;
            t.sum_ns = v.sum_ns - it->second.sum_ns;
        }
        d.timers[k] = t;
    }
    return d;
}

} // namespace skv::obs
