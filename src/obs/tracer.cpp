#include "obs/tracer.hpp"

namespace skv::obs {

namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffU;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

const char* stage_name(Stage s) {
    switch (s) {
    case Stage::kClientE2e: return "client_e2e";
    case Stage::kRdmaWrite: return "rdma_write";
    case Stage::kCqWakeup: return "cq_wakeup";
    case Stage::kMasterApply: return "master_apply";
    case Stage::kReply: return "reply";
    case Stage::kOffloadRequest: return "offload_request";
    case Stage::kNicFanout: return "nic_fanout";
    case Stage::kSlaveAck: return "slave_ack";
    case Stage::kFabricTransfer: return "fabric_transfer";
    case Stage::kCount: break;
    }
    return "unknown";
}

std::uint32_t Tracer::track(const std::string& name) {
    auto it = track_index_.find(name);
    if (it == track_index_.end()) {
        track_names_.push_back(name);
        it = track_index_
                 .emplace(name,
                          static_cast<std::uint32_t>(track_names_.size() - 1))
                 .first;
    }
    return it->second;
}

std::uint64_t Tracer::span_id(std::uint32_t track, Stage stage) {
    std::uint64_t h = fnv_mix(kFnvBasis, sim_.seed());
    h = fnv_mix(h, track);
    h = fnv_mix(h, static_cast<std::uint64_t>(stage));
    h = fnv_mix(h, seq_++);
    return h;
}

void Tracer::push_span(std::uint32_t track, Stage stage, sim::SimTime begin,
                       sim::SimTime end) {
    if (spans_.size() >= max_spans_) {
        ++dropped_spans_;
        return;
    }
    spans_.push_back(Span{span_id(track, stage), track, stage, begin, end});
}

void Tracer::accumulate(Stage stage, sim::Duration d) {
    accums_[static_cast<std::size_t>(stage)].sum_ns += d.ns();
    ++accums_[static_cast<std::size_t>(stage)].count;
    hists_[static_cast<std::size_t>(stage)].record(d);
}

void Tracer::complete(std::uint32_t track, Stage stage, sim::SimTime begin,
                      sim::SimTime end) {
    if (!enabled_) return;
    accumulate(stage, end - begin);
    push_span(track, stage, begin, end);
}

void Tracer::flow_issue(std::uint64_t flow, std::uint32_t client_track) {
    if (!enabled_) return;
    if (flows_.size() >= kMaxFlows && flows_.find(flow) == flows_.end()) return;
    // (Re)arm the flow: a fresh issue invalidates any stale server stamps
    // from an abandoned request on the same connection.
    FlowState& f = flows_[flow];
    f = FlowState{};
    f.issue = sim_.now();
    f.client_track = client_track;
    f.have = 1;
}

void Tracer::flow_server_recv(std::uint64_t flow, std::uint32_t server_track) {
    if (!enabled_) return;
    const auto it = flows_.find(flow);
    if (it == flows_.end() || (it->second.have & 1) == 0) return;
    it->second.recv = sim_.now();
    it->second.server_track = server_track;
    it->second.have |= 2;
}

void Tracer::flow_server_done(std::uint64_t flow) {
    if (!enabled_) return;
    const auto it = flows_.find(flow);
    if (it == flows_.end() || (it->second.have & 2) == 0) return;
    it->second.done = sim_.now();
    it->second.have |= 4;
}

void Tracer::flow_complete(std::uint64_t flow) {
    if (!enabled_) return;
    const auto it = flows_.find(flow);
    if (it == flows_.end()) return;
    const FlowState f = it->second;
    flows_.erase(it);
    const sim::SimTime end = sim_.now();
    if (f.have != 7) return; // partial stamping (e.g. raw shell client)
    if (f.recv.ns() < f.issue.ns() || f.done.ns() < f.recv.ns() ||
        end.ns() < f.done.ns()) {
        return;
    }
    accumulate(Stage::kClientE2e, end - f.issue);
    accumulate(Stage::kRdmaWrite, f.recv - f.issue);
    accumulate(Stage::kMasterApply, f.done - f.recv);
    accumulate(Stage::kReply, end - f.done);
    push_span(f.client_track, Stage::kClientE2e, f.issue, end);
    push_span(f.client_track, Stage::kRdmaWrite, f.issue, f.recv);
    push_span(f.server_track, Stage::kMasterApply, f.recv, f.done);
    push_span(f.client_track, Stage::kReply, f.done, end);
}

void Tracer::repl_propagate(std::int64_t offset, std::int64_t end_offset,
                            std::uint32_t master_track) {
    if (!enabled_) return;
    if (repl_.size() >= kMaxRepl) repl_.erase(repl_.begin()); // oldest offset
    ReplState& r = repl_[offset];
    r = ReplState{};
    r.propagate = sim_.now();
    r.end_offset = end_offset;
    r.master_track = master_track;
}

void Tracer::repl_fanout(std::int64_t offset, std::uint32_t nic_track) {
    if (!enabled_) return;
    const auto it = repl_.find(offset);
    if (it == repl_.end()) return;
    it->second.fanout = sim_.now();
    it->second.nic_track = nic_track;
    it->second.have_fanout = true;
    accumulate(Stage::kOffloadRequest, sim_.now() - it->second.propagate);
    push_span(nic_track, Stage::kOffloadRequest, it->second.propagate,
              sim_.now());
}

void Tracer::repl_slave_apply(std::int64_t offset, std::uint32_t slave_track) {
    if (!enabled_) return;
    const auto it = repl_.find(offset);
    if (it == repl_.end()) return;
    // SKV: measure from the NIC fan-out parse; baseline (no NIC): from the
    // master's propagate. Either way the stage is "repl bytes in flight to
    // this slave".
    const sim::SimTime from =
        it->second.have_fanout ? it->second.fanout : it->second.propagate;
    accumulate(Stage::kNicFanout, sim_.now() - from);
    push_span(slave_track, Stage::kNicFanout, from, sim_.now());
}

void Tracer::repl_ack(std::int64_t cum_offset) {
    if (!enabled_) return;
    // Acks are cumulative: every outstanding propagate fully covered by
    // this ack completes its kSlaveAck span now and is retired.
    auto it = repl_.begin();
    while (it != repl_.end() && it->second.end_offset <= cum_offset) {
        accumulate(Stage::kSlaveAck, sim_.now() - it->second.propagate);
        push_span(it->second.master_track, Stage::kSlaveAck,
                  it->second.propagate, sim_.now());
        it = repl_.erase(it);
    }
}

void Tracer::clear() {
    spans_.clear();
    flows_.clear();
    repl_.clear();
    for (auto& a : accums_) a = StageAccum{};
    for (auto& h : hists_) h.clear();
    dropped_spans_ = 0;
    seq_ = 0;
}

} // namespace skv::obs
