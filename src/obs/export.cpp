#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

namespace skv::obs {

void JsonWriter::pre() {
    if (comma_) out_ += ',';
    comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
    pre();
    out_ += '{';
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    out_ += '}';
    comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre();
    out_ += '[';
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    out_ += ']';
    comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    pre();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    return *this;
}

JsonWriter& JsonWriter::value(double v, int decimals) {
    pre();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    out_ += buf;
    comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    pre();
    out_ += std::to_string(v);
    comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    pre();
    out_ += std::to_string(v);
    comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
    pre();
    out_ += '"';
    out_ += json_escape(s);
    out_ += '"';
    comma_ = true;
    return *this;
}

JsonWriter& JsonWriter::value_bool(bool b) {
    pre();
    out_ += b ? "true" : "false";
    comma_ = true;
    return *this;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string registry_text(const Registry& r) {
    const Snapshot s = r.snapshot();
    const std::string prefix = r.scope().empty() ? "" : r.scope() + ".";
    std::string out;
    for (const auto& [k, v] : s.counters) {
        out += prefix + k + "=" + std::to_string(v) + "\n";
    }
    for (const auto& [k, v] : s.gauges) {
        out += prefix + k + "=" + std::to_string(v) + "\n";
    }
    for (const auto& [k, t] : s.timers) {
        char buf[192];
        const double mean =
            t.count ? t.sum_ns / static_cast<double>(t.count) : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "n=%llu mean_us=%.3f p50_us=%.3f p99_us=%.3f "
                      "p999_us=%.3f max_us=%.3f",
                      static_cast<unsigned long long>(t.count), mean / 1e3,
                      static_cast<double>(t.p50_ns) / 1e3,
                      static_cast<double>(t.p99_ns) / 1e3,
                      static_cast<double>(t.p999_ns) / 1e3,
                      static_cast<double>(t.max_ns) / 1e3);
        out += prefix + k + ": " + buf + "\n";
    }
    return out;
}

std::string snapshot_json(const Snapshot& s, std::string_view scope) {
    JsonWriter w;
    w.begin_object();
    if (!scope.empty()) w.kv("scope", scope);
    w.key("counters").begin_object();
    for (const auto& [k, v] : s.counters) w.kv(k, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [k, v] : s.gauges) w.kv(k, v);
    w.end_object();
    w.key("timers").begin_object();
    for (const auto& [k, t] : s.timers) {
        const double mean =
            t.count ? t.sum_ns / static_cast<double>(t.count) : 0.0;
        w.key(k).begin_object();
        w.kv("count", t.count);
        w.kv("mean_us", mean / 1e3);
        w.kv("p50_us", static_cast<double>(t.p50_ns) / 1e3);
        w.kv("p99_us", static_cast<double>(t.p99_ns) / 1e3);
        w.kv("p999_us", static_cast<double>(t.p999_ns) / 1e3);
        w.kv("max_us", static_cast<double>(t.max_ns) / 1e3);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
}

std::string registry_json(const Registry& r) {
    return snapshot_json(r.snapshot(), r.scope());
}

std::string chrome_trace_json(const Tracer& t) {
    // ts/dur in microseconds. ns -> us with 3 decimals is an exact decimal
    // conversion, so snprintf output is deterministic byte for byte.
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto& tracks = t.track_names();
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
        out += std::to_string(i);
        out += ",\"args\":{\"name\":\"" + json_escape(tracks[i]) + "\"}}";
    }
    char buf[192];
    for (const auto& sp : t.spans()) {
        if (!first) out += ',';
        first = false;
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
            "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"span_id\":\"%016llx\"}}",
            stage_name(sp.stage), sp.track,
            static_cast<double>(sp.begin.ns()) / 1e3,
            static_cast<double>((sp.end - sp.begin).ns()) / 1e3,
            static_cast<unsigned long long>(sp.id));
        out += buf;
    }
    out += "],\"displayTimeUnit\":\"ns\",\"metadata\":{\"dropped_spans\":";
    out += std::to_string(t.dropped_spans());
    out += "}}";
    return out;
}

bool write_chrome_trace(const Tracer& t, const std::string& path) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    const std::string json = chrome_trace_json(t);
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(f);
}

void print_stdout(std::string_view s) {
    std::fwrite(s.data(), 1, s.size(), stdout);
}

void print_line(std::string_view s) {
    print_stdout(s);
    print_stdout("\n");
}

void print_bench_json(const JsonWriter& w) {
    print_stdout("JSON: ");
    print_line(w.str());
}

} // namespace skv::obs
