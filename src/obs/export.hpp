#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace skv::obs {

/// Deterministic JSON builder shared by the metric exporters and the bench
/// binaries. All floating-point values are formatted with a fixed decimal
/// count via snprintf, so same-seed runs produce byte-identical documents
/// (the stability guarantee EXPERIMENTS.md documents for the bench schema).
class JsonWriter {
public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    JsonWriter& key(std::string_view k);
    JsonWriter& value(double v, int decimals = 3);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(std::string_view s);
    JsonWriter& value_bool(bool b);
    /// key + value in one call, for flat rows.
    template <typename T> JsonWriter& kv(std::string_view k, T v) {
        key(k);
        return value(v);
    }
    [[nodiscard]] const std::string& str() const { return out_; }

private:
    void pre();
    std::string out_;
    bool comma_ = false;
};

/// Escape a string for embedding in JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Full registry dump as sorted "scope.name=value" text lines, including
/// timer summaries (count/mean/p50/p99/p999/max). Unlike Registry::format()
/// this is the complete picture; format() stays byte-compatible with the
/// old sim::StatsRegistry output.
[[nodiscard]] std::string registry_text(const Registry& r);

/// Registry as a JSON object: {"scope":...,"counters":{...},"gauges":{...},
/// "timers":{name:{count,mean_us,p50_us,p99_us,p999_us,max_us}}}.
[[nodiscard]] std::string registry_json(const Registry& r);
[[nodiscard]] std::string snapshot_json(const Snapshot& s,
                                        std::string_view scope = {});

/// Tracer spans as chrome://tracing "traceEvents" JSON (ph:"X" complete
/// events, ts/dur in microseconds with fixed 3-decimal formatting, tracks
/// mapped to tids with thread_name metadata). Byte-identical across
/// same-seed runs.
[[nodiscard]] std::string chrome_trace_json(const Tracer& t);

/// Write chrome_trace_json(t) to `path`. Returns false on I/O failure.
bool write_chrome_trace(const Tracer& t, const std::string& path);

/// The single place library/bench code is permitted to write to stdout
/// (tools/simlint enforces that src/obs/export* is the only stdout writer
/// under src/). Bench binaries route their human tables and machine
/// "JSON: {...}" lines through these.
void print_stdout(std::string_view s);
void print_line(std::string_view s);

/// Emit one machine-readable bench result line: `JSON: {...}\n`. The body
/// must already be a complete JSON object (build it with JsonWriter).
void print_bench_json(const JsonWriter& w);

} // namespace skv::obs
