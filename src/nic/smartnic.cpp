#include "nic/smartnic.hpp"
#include "sim/check.hpp"


namespace skv::nic {

SmartNic::SmartNic(sim::Simulation& sim, net::Fabric& fabric,
                   net::EndpointId host, const std::string& name,
                   SmartNicParams params)
    : host_(host), name_(name), params_(params), obs_(name),
      c_mem_rejects_(obs_.counter_handle("mem_reserve_rejects")),
      g_mem_used_(obs_.gauge_handle("mem_used_bytes")),
      g_steering_rules_(obs_.gauge_handle("steering_rules")) {
    SKV_CHECK(params_.arm_cores > 0);
    endpoint_ = fabric.add_companion(host, name, params_.companion);
    cores_.reserve(static_cast<std::size_t>(params_.arm_cores));
    for (int i = 0; i < params_.arm_cores; ++i) {
        cores_.push_back(std::make_unique<cpu::Core>(
            sim, name + "/arm" + std::to_string(i), params_.core_slowdown));
    }
}

bool SmartNic::reserve_memory(std::size_t bytes) {
    if (mem_used_ + bytes > params_.dram_bytes) {
        c_mem_rejects_.incr();
        return false;
    }
    mem_used_ += bytes;
    g_mem_used_.set(static_cast<std::int64_t>(mem_used_));
    return true;
}

void SmartNic::release_memory(std::size_t bytes) {
    SKV_CHECK(bytes <= mem_used_);
    mem_used_ -= bytes;
    g_mem_used_.set(static_cast<std::int64_t>(mem_used_));
}

void SmartNic::steer(std::uint16_t service_port, SteerTarget target) {
    if (target == SteerTarget::kHost) {
        steering_.erase(service_port);
    } else {
        steering_[service_port] = target;
    }
    g_steering_rules_.set(static_cast<std::int64_t>(steering_.size()));
}

SteerTarget SmartNic::steering(std::uint16_t service_port) const {
    auto it = steering_.find(service_port);
    return it == steering_.end() ? SteerTarget::kHost : it->second;
}

} // namespace skv::nic
