#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "net/channel.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace skv::nic {

/// Where the NIC switch steers a flow (paper Fig. 2): straight through to
/// the host PCIe function, or up to the ARM cores on the SmartNIC.
enum class SteerTarget : std::uint8_t { kHost, kNicCores };

/// Physical parameters of the simulated BlueField-2 class device.
struct SmartNicParams {
    /// ARM A72 cores available to offloaded services.
    int arm_cores = 8;
    /// Slowdown of one ARM core relative to the host Xeon (cost scaling).
    double core_slowdown = 2.5;
    /// On-board DDR available to Nic-KV (16 GB on the paper's MBF2H516A).
    std::size_t dram_bytes = 16ULL * 1024 * 1024 * 1024;
    /// Internal-path / stack-overhead parameters for the fabric companion
    /// endpoint.
    net::CompanionParams companion;
};

/// An off-path multi-core SoC SmartNIC installed behind one host port.
/// Owns the companion fabric endpoint (the NIC is "just like a separated
/// endpoint in the network", §II-A2), the ARM cores, the on-board memory
/// budget, and the NIC-switch steering table.
class SmartNic {
public:
    SmartNic(sim::Simulation& sim, net::Fabric& fabric, net::EndpointId host,
             const std::string& name, SmartNicParams params = {});

    [[nodiscard]] net::EndpointId endpoint() const { return endpoint_; }
    [[nodiscard]] net::EndpointId host_endpoint() const { return host_; }

    [[nodiscard]] int core_count() const { return static_cast<int>(cores_.size()); }
    [[nodiscard]] cpu::Core& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }

    /// NodeRef for transports running on ARM core `i`.
    [[nodiscard]] net::NodeRef node(int i = 0) {
        return net::NodeRef{endpoint_, cores_.at(static_cast<std::size_t>(i)).get()};
    }

    // --- on-board memory budget -------------------------------------------
    /// Try to reserve on-board DRAM; fails (returns false) when the NIC is
    /// out of memory — the reason SKV keeps the keyspace on the host.
    [[nodiscard]] bool reserve_memory(std::size_t bytes);
    void release_memory(std::size_t bytes);
    [[nodiscard]] std::size_t memory_used() const { return mem_used_; }
    [[nodiscard]] std::size_t memory_capacity() const { return params_.dram_bytes; }

    // --- NIC switch steering table -----------------------------------------
    /// Steer traffic addressed to `service_port` to the host or the ARM
    /// cores. Unlisted ports default to the host, so ordinary flows bypass
    /// the ARM cores entirely (the off-path property).
    void steer(std::uint16_t service_port, SteerTarget target);
    [[nodiscard]] SteerTarget steering(std::uint16_t service_port) const;
    [[nodiscard]] std::size_t steering_rules() const { return steering_.size(); }

    /// The fabric endpoint a flow to `service_port` should address.
    [[nodiscard]] net::EndpointId resolve(std::uint16_t service_port) const {
        return steering(service_port) == SteerTarget::kNicCores ? endpoint_ : host_;
    }

    [[nodiscard]] const SmartNicParams& params() const { return params_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] obs::Registry& obs() { return obs_; }

private:
    net::EndpointId host_;
    net::EndpointId endpoint_;
    std::string name_;
    SmartNicParams params_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::size_t mem_used_ = 0;
    std::map<std::uint16_t, SteerTarget> steering_;

    obs::Registry obs_;
    obs::Counter c_mem_rejects_;
    obs::Gauge g_mem_used_;
    obs::Gauge g_steering_rules_;
};

} // namespace skv::nic
